#include "graph/bfs.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

namespace {

/// Per-call edge-scan tally, flushed to the (atomic) obs counters once at
/// the end of a traversal so the inner loops stay contention-free.
struct ScanTally {
  long long topdown = 0;   ///< neighbor inspections in top-down steps
  long long bottomup = 0;  ///< neighbor inspections in bottom-up steps
  long long switches = 0;  ///< direction changes between consecutive steps

  void flush() const {
    FHP_COUNTER_ADD("bfs/edges_scanned_topdown", topdown);
    FHP_COUNTER_ADD("bfs/edges_scanned_bottomup", bottomup);
    FHP_COUNTER_ADD("bfs/frontier_switches", switches);
  }
};

/// Rebuilds the frontier bitset from a flat frontier array.
void fill_frontier_bits(const std::vector<VertexId>& frontier, VertexId n,
                        Workspace& ws) {
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  ws.ensure_capacity(ws.frontier_bits, words);
  ws.frontier_bits.assign(words, 0);
  for (VertexId u : frontier) {
    ws.frontier_bits[u >> 6] |= std::uint64_t{1} << (u & 63);
  }
}

inline bool test_bit(const std::vector<std::uint64_t>& bits, VertexId v) {
  return (bits[v >> 6] >> (v & 63)) & 1U;
}

/// The direction heuristic (Beamer): expand bottom-up when the frontier's
/// adjacency mass dominates the unexplored mass (alpha) AND the frontier
/// is a sizable fraction of the graph (beta — bounds the number of
/// O(n)-scan bottom-up levels on deep graphs). Every input is a
/// relabeling-invariant quantity, so the decision — and with it the
/// level-set evolution — is identical on any isomorphic relabeling.
inline bool choose_bottom_up(const BfsKernelOptions& kernel,
                             std::uint64_t frontier_deg,
                             std::uint64_t unexplored_deg,
                             std::size_t frontier_size, VertexId n) {
  return kernel.direction_optimizing && n >= 64 &&
         frontier_deg * kernel.alpha > unexplored_deg &&
         frontier_size * kernel.beta > n;
}

}  // namespace

BfsResult bfs(const Graph& g, VertexId source) {
  // Thin wrapper over the workspace engine: one traversal implementation
  // serves both APIs; this overload only pays to copy the labels out.
  Workspace ws;
  const BfsSummary summary = bfs_scan(g, source, ws);
  BfsResult result;
  result.distance.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.distance[v] = ws.distance.get(v);
  }
  result.farthest = summary.farthest;
  result.depth = summary.depth;
  result.reached = summary.reached;
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return result;
}

BfsSummary bfs_scan(const Graph& g, VertexId source, Workspace& ws,
                    const BfsKernelOptions& kernel) {
  FHP_COUNTER_ADD("bfs/calls", 1);
  FHP_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  const VertexId n = g.num_vertices();
  BfsSummary result;
  ws.distance.reset(n, kUnreachable);
  ws.distance.set(source, 0);
  result.reached = 1;

  std::vector<VertexId>& curr = ws.queue;
  std::vector<VertexId>& next = ws.next;
  ws.reset_buffer(curr, n);
  ws.reset_buffer(next, n);
  curr.push_back(source);

  ScanTally tally;
  std::uint64_t unexplored_deg = 2 * g.num_edges() - g.degree(source);
  std::uint64_t frontier_deg = g.degree(source);
  std::uint32_t level = 0;
  bool was_bottom_up = false;
  while (true) {
    const bool bottom_up = choose_bottom_up(kernel, frontier_deg,
                                            unexplored_deg, curr.size(), n);
    if (bottom_up != was_bottom_up) {
      ++tally.switches;
      was_bottom_up = bottom_up;
    }
    next.clear();
    std::uint64_t next_deg = 0;
    if (bottom_up) {
      fill_frontier_bits(curr, n, ws);
      for (VertexId v = 0; v < n; ++v) {
        if (ws.distance.is_set(v)) continue;
        for (VertexId w : g.neighbors(v)) {
          ++tally.bottomup;
          if (test_bit(ws.frontier_bits, w)) {
            ws.distance.set(v, level + 1);
            next.push_back(v);
            next_deg += g.degree(v);
            break;
          }
        }
      }
    } else {
      for (VertexId u : curr) {
        for (VertexId w : g.neighbors(u)) {
          ++tally.topdown;
          if (!ws.distance.is_set(w)) {
            ws.distance.set(w, level + 1);
            next.push_back(w);
            next_deg += g.degree(w);
          }
        }
      }
    }
    if (next.empty()) break;
    ++level;
    result.reached += static_cast<VertexId>(next.size());
    unexplored_deg -= next_deg;
    frontier_deg = next_deg;
    curr.swap(next);
  }

  // `curr` is the last non-empty level == the set at maximum distance,
  // which is the same set whichever directions expanded the levels;
  // elect the smallest id (or smallest caller-supplied rank) from it.
  result.depth = level;
  result.farthest = curr.front();
  for (VertexId u : curr) {
    if (kernel.tie_rank != nullptr
            ? kernel.tie_rank[u] < kernel.tie_rank[result.farthest]
            : u < result.farthest) {
      result.farthest = u;
    }
  }

  tally.flush();
  FHP_COUNTER_ADD("bfs/vertices_reached",
                  static_cast<long long>(result.reached));
  FHP_COUNTER_ADD("bfs/levels_visited", static_cast<long long>(result.depth));
  return result;
}

DiameterPair longest_path_from(const Graph& g, VertexId start, int sweeps,
                               Workspace& ws, const BfsKernelOptions& kernel) {
  FHP_TRACE_SCOPE("diameter");
  FHP_REQUIRE(sweeps >= 1, "need at least one BFS sweep");
  DiameterPair pair;
  BfsSummary r = bfs_scan(g, start, ws, kernel);
  pair.s = start;
  pair.t = r.farthest;
  pair.distance = r.depth;
  for (int sweep = 1; sweep < sweeps; ++sweep) {
    r = bfs_scan(g, pair.t, ws, kernel);
    if (r.depth <= pair.distance && sweep > 1) break;  // converged
    pair.s = pair.t;
    pair.t = r.farthest;
    pair.distance = r.depth;
  }
  return pair;
}

DiameterPair longest_path_from(const Graph& g, VertexId start, int sweeps) {
  Workspace ws;
  const DiameterPair pair = longest_path_from(g, start, sweeps, ws);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return pair;
}

DiameterPair random_longest_path(const Graph& g, Rng& rng, int sweeps) {
  FHP_REQUIRE(g.num_vertices() > 0, "graph is empty");
  const auto start = static_cast<VertexId>(rng.next_below(g.num_vertices()));
  return longest_path_from(g, start, sweeps);
}

void bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t,
                           Workspace& ws, BidirectionalCut& out,
                           const BfsKernelOptions& kernel) {
  FHP_TRACE_SCOPE("initial_cut");
  FHP_COUNTER_ADD("bfs/bidirectional_cuts", 1);
  FHP_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "seed out of range");
  FHP_REQUIRE(s != t, "seeds must be distinct");
  const VertexId n = g.num_vertices();
  ws.ensure_capacity(out.side, n);
  out.side.assign(n, std::uint8_t{2});

  // Two frontier queues; expand one full level of the smaller region at a
  // time so that regions stay close in size even when the seeds sit in
  // unbalanced positions of the graph. The frontiers and the next-level
  // staging buffer live in the workspace: clear() between levels keeps
  // their capacity, so a warmed-up lane runs the loop allocation-free.
  // Each expansion step claims exactly the unclaimed neighbors of the
  // chosen region's frontier, either top-down (scan the frontier's rows)
  // or bottom-up (scan unclaimed vertices for a frontier bit) — the same
  // set either way, so direction never changes the cut.
  ws.reset_buffer(ws.frontier[0], 1);
  ws.reset_buffer(ws.frontier[1], 1);
  ws.frontier[0].push_back(s);
  ws.frontier[1].push_back(t);
  out.side[s] = 0;
  out.side[t] = 1;
  out.reached_s = 1;
  out.reached_t = 1;

  ScanTally tally;
  std::uint64_t unclaimed_deg = 2 * g.num_edges() - g.degree(s) - g.degree(t);
  std::uint64_t frontier_deg[2] = {g.degree(s), g.degree(t)};
  bool was_bottom_up = false;
  ws.next.clear();
  while (!ws.frontier[0].empty() || !ws.frontier[1].empty()) {
    int which;
    if (ws.frontier[0].empty()) {
      which = 1;
    } else if (ws.frontier[1].empty()) {
      which = 0;
    } else {
      which = (out.reached_s <= out.reached_t) ? 0 : 1;
    }
    std::vector<VertexId>& frontier = ws.frontier[which];
    const bool bottom_up = choose_bottom_up(
        kernel, frontier_deg[which], unclaimed_deg, frontier.size(), n);
    if (bottom_up != was_bottom_up) {
      ++tally.switches;
      was_bottom_up = bottom_up;
    }
    ws.next.clear();
    std::uint64_t next_deg = 0;
    VertexId claimed = 0;
    if (bottom_up) {
      fill_frontier_bits(frontier, n, ws);
      for (VertexId v = 0; v < n; ++v) {
        if (out.side[v] != 2) continue;
        for (VertexId w : g.neighbors(v)) {
          ++tally.bottomup;
          if (test_bit(ws.frontier_bits, w)) {
            out.side[v] = static_cast<std::uint8_t>(which);
            ++claimed;
            next_deg += g.degree(v);
            ws.next.push_back(v);
            break;
          }
        }
      }
    } else {
      for (VertexId u : frontier) {
        for (VertexId w : g.neighbors(u)) {
          ++tally.topdown;
          if (out.side[w] != 2) continue;
          out.side[w] = static_cast<std::uint8_t>(which);
          ++claimed;
          next_deg += g.degree(w);
          ws.next.push_back(w);
        }
      }
    }
    if (which == 0) {
      out.reached_s += claimed;
    } else {
      out.reached_t += claimed;
    }
    unclaimed_deg -= next_deg;
    frontier_deg[which] = next_deg;
    frontier.swap(ws.next);
  }
  tally.flush();
}

BidirectionalCut bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t) {
  Workspace ws;
  BidirectionalCut cut;
  bidirectional_bfs_cut(g, s, t, ws, cut);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return cut;
}

}  // namespace fhp

#include "graph/bfs.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

BfsResult bfs(const Graph& g, VertexId source) {
  FHP_COUNTER_ADD("bfs/calls", 1);
  FHP_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  BfsResult result;
  result.distance.assign(g.num_vertices(), kUnreachable);
  result.distance[source] = 0;
  result.farthest = source;
  result.depth = 0;
  result.reached = 1;

  std::vector<VertexId> queue;
  queue.reserve(g.num_vertices());
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::uint32_t du = result.distance[u];
    for (VertexId w : g.neighbors(u)) {
      if (result.distance[w] != kUnreachable) continue;
      result.distance[w] = du + 1;
      ++result.reached;
      if (du + 1 > result.depth) {
        result.depth = du + 1;
        result.farthest = w;
      }
      queue.push_back(w);
    }
  }
  FHP_COUNTER_ADD("bfs/vertices_reached",
                  static_cast<long long>(result.reached));
  FHP_COUNTER_ADD("bfs/levels_visited", static_cast<long long>(result.depth));
  return result;
}

BfsSummary bfs_scan(const Graph& g, VertexId source, Workspace& ws) {
  FHP_COUNTER_ADD("bfs/calls", 1);
  FHP_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  BfsSummary result;
  ws.distance.reset(g.num_vertices(), kUnreachable);
  ws.distance.set(source, 0);
  result.farthest = source;
  result.depth = 0;
  result.reached = 1;

  ws.reset_buffer(ws.queue, g.num_vertices());
  ws.queue.push_back(source);
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const VertexId u = ws.queue[head];
    const std::uint32_t du = ws.distance.get(u);
    for (VertexId w : g.neighbors(u)) {
      if (ws.distance.is_set(w)) continue;
      ws.distance.set(w, du + 1);
      ++result.reached;
      if (du + 1 > result.depth) {
        result.depth = du + 1;
        result.farthest = w;
      }
      ws.queue.push_back(w);
    }
  }
  FHP_COUNTER_ADD("bfs/vertices_reached",
                  static_cast<long long>(result.reached));
  FHP_COUNTER_ADD("bfs/levels_visited", static_cast<long long>(result.depth));
  return result;
}

DiameterPair longest_path_from(const Graph& g, VertexId start, int sweeps,
                               Workspace& ws) {
  FHP_TRACE_SCOPE("diameter");
  FHP_REQUIRE(sweeps >= 1, "need at least one BFS sweep");
  DiameterPair pair;
  BfsSummary r = bfs_scan(g, start, ws);
  pair.s = start;
  pair.t = r.farthest;
  pair.distance = r.depth;
  for (int sweep = 1; sweep < sweeps; ++sweep) {
    r = bfs_scan(g, pair.t, ws);
    if (r.depth <= pair.distance && sweep > 1) break;  // converged
    pair.s = pair.t;
    pair.t = r.farthest;
    pair.distance = r.depth;
  }
  return pair;
}

DiameterPair longest_path_from(const Graph& g, VertexId start, int sweeps) {
  Workspace ws;
  const DiameterPair pair = longest_path_from(g, start, sweeps, ws);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return pair;
}

DiameterPair random_longest_path(const Graph& g, Rng& rng, int sweeps) {
  FHP_REQUIRE(g.num_vertices() > 0, "graph is empty");
  const auto start = static_cast<VertexId>(rng.next_below(g.num_vertices()));
  return longest_path_from(g, start, sweeps);
}

void bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t,
                           Workspace& ws, BidirectionalCut& out) {
  FHP_TRACE_SCOPE("initial_cut");
  FHP_COUNTER_ADD("bfs/bidirectional_cuts", 1);
  FHP_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "seed out of range");
  FHP_REQUIRE(s != t, "seeds must be distinct");
  ws.ensure_capacity(out.side, g.num_vertices());
  out.side.assign(g.num_vertices(), std::uint8_t{2});

  // Two frontier queues; expand one full level of the smaller region at a
  // time so that regions stay close in size even when the seeds sit in
  // unbalanced positions of the graph. The frontiers and the next-level
  // staging buffer live in the workspace: clear() between levels keeps
  // their capacity, so a warmed-up lane runs the loop allocation-free.
  ws.reset_buffer(ws.frontier[0], 1);
  ws.reset_buffer(ws.frontier[1], 1);
  ws.frontier[0].push_back(s);
  ws.frontier[1].push_back(t);
  out.side[s] = 0;
  out.side[t] = 1;
  out.reached_s = 1;
  out.reached_t = 1;

  ws.next.clear();
  while (!ws.frontier[0].empty() || !ws.frontier[1].empty()) {
    int which;
    if (ws.frontier[0].empty()) {
      which = 1;
    } else if (ws.frontier[1].empty()) {
      which = 0;
    } else {
      which = (out.reached_s <= out.reached_t) ? 0 : 1;
    }
    ws.next.clear();
    for (VertexId u : ws.frontier[which]) {
      for (VertexId w : g.neighbors(u)) {
        if (out.side[w] != 2) continue;
        out.side[w] = static_cast<std::uint8_t>(which);
        if (which == 0) {
          ++out.reached_s;
        } else {
          ++out.reached_t;
        }
        ws.next.push_back(w);
      }
    }
    ws.frontier[which].swap(ws.next);
  }
}

BidirectionalCut bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t) {
  Workspace ws;
  BidirectionalCut cut;
  bidirectional_bfs_cut(g, s, t, ws, cut);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return cut;
}

}  // namespace fhp

#include "graph/bfs.hpp"

#include <deque>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

BfsResult bfs(const Graph& g, VertexId source) {
  FHP_COUNTER_ADD("bfs/calls", 1);
  FHP_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  BfsResult result;
  result.distance.assign(g.num_vertices(), kUnreachable);
  result.distance[source] = 0;
  result.farthest = source;
  result.depth = 0;
  result.reached = 1;

  std::vector<VertexId> queue;
  queue.reserve(g.num_vertices());
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::uint32_t du = result.distance[u];
    for (VertexId w : g.neighbors(u)) {
      if (result.distance[w] != kUnreachable) continue;
      result.distance[w] = du + 1;
      ++result.reached;
      if (du + 1 > result.depth) {
        result.depth = du + 1;
        result.farthest = w;
      }
      queue.push_back(w);
    }
  }
  FHP_COUNTER_ADD("bfs/vertices_reached",
                  static_cast<long long>(result.reached));
  FHP_COUNTER_ADD("bfs/levels_visited", static_cast<long long>(result.depth));
  return result;
}

DiameterPair longest_path_from(const Graph& g, VertexId start, int sweeps) {
  FHP_TRACE_SCOPE("diameter");
  FHP_REQUIRE(sweeps >= 1, "need at least one BFS sweep");
  DiameterPair pair;
  BfsResult r = bfs(g, start);
  pair.s = start;
  pair.t = r.farthest;
  pair.distance = r.depth;
  for (int sweep = 1; sweep < sweeps; ++sweep) {
    r = bfs(g, pair.t);
    if (r.depth <= pair.distance && sweep > 1) break;  // converged
    pair.s = pair.t;
    pair.t = r.farthest;
    pair.distance = r.depth;
  }
  return pair;
}

DiameterPair random_longest_path(const Graph& g, Rng& rng, int sweeps) {
  FHP_REQUIRE(g.num_vertices() > 0, "graph is empty");
  const auto start = static_cast<VertexId>(rng.next_below(g.num_vertices()));
  return longest_path_from(g, start, sweeps);
}

BidirectionalCut bidirectional_bfs_cut(const Graph& g, VertexId s, VertexId t) {
  FHP_TRACE_SCOPE("initial_cut");
  FHP_COUNTER_ADD("bfs/bidirectional_cuts", 1);
  FHP_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "seed out of range");
  FHP_REQUIRE(s != t, "seeds must be distinct");
  BidirectionalCut cut;
  cut.side.assign(g.num_vertices(), std::uint8_t{2});

  // Two frontier queues; expand one full level of the smaller region at a
  // time so that regions stay close in size even when the seeds sit in
  // unbalanced positions of the graph.
  std::vector<VertexId> frontier[2];
  frontier[0].push_back(s);
  frontier[1].push_back(t);
  cut.side[s] = 0;
  cut.side[t] = 1;
  cut.reached_s = 1;
  cut.reached_t = 1;

  std::vector<VertexId> next;
  while (!frontier[0].empty() || !frontier[1].empty()) {
    int which;
    if (frontier[0].empty()) {
      which = 1;
    } else if (frontier[1].empty()) {
      which = 0;
    } else {
      which = (cut.reached_s <= cut.reached_t) ? 0 : 1;
    }
    next.clear();
    for (VertexId u : frontier[which]) {
      for (VertexId w : g.neighbors(u)) {
        if (cut.side[w] != 2) continue;
        cut.side[w] = static_cast<std::uint8_t>(which);
        if (which == 0) {
          ++cut.reached_s;
        } else {
          ++cut.reached_t;
        }
        next.push_back(w);
      }
    }
    frontier[which].swap(next);
  }
  return cut;
}

}  // namespace fhp

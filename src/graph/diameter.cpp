#include "graph/diameter.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "obs/trace.hpp"

namespace fhp {

std::uint32_t exact_diameter(const Graph& g) {
  FHP_TRACE_SCOPE("diameter_exact");
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, bfs(g, v).depth);
  }
  return best;
}

std::uint32_t estimate_diameter(const Graph& g, Rng& rng, int starts) {
  FHP_TRACE_SCOPE("diameter_estimate");
  FHP_REQUIRE(starts >= 1, "need at least one start");
  std::uint32_t best = 0;
  for (int i = 0; i < starts; ++i) {
    best = std::max(best, random_longest_path(g, rng).distance);
  }
  return best;
}

}  // namespace fhp

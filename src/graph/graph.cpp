#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

namespace fhp {

Graph Graph::from_edges(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return std::move(builder).build();
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  FHP_REQUIRE(u < num_vertices() && v < num_vertices(), "vertex out of range");
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

void Graph::validate() const {
  FHP_ASSERT(offsets_.front() == 0 && offsets_.back() == adjacency_.size(),
             "offsets must span the adjacency array");
  FHP_ASSERT(adjacency_.size() % 2 == 0,
             "undirected adjacency must have even total length");
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto ns = neighbors(v);
    FHP_ASSERT(std::is_sorted(ns.begin(), ns.end()),
               "neighbor lists must be sorted");
    FHP_ASSERT(std::adjacent_find(ns.begin(), ns.end()) == ns.end(),
               "parallel edges are not allowed");
    for (VertexId u : ns) {
      FHP_ASSERT(u < num_vertices(), "neighbor out of range");
      FHP_ASSERT(u != v, "self-loops are not allowed");
      const auto back = neighbors(u);
      FHP_ASSERT(std::binary_search(back.begin(), back.end(), v),
                 "adjacency must be symmetric");
    }
  }
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  FHP_REQUIRE(u < num_vertices_ && v < num_vertices_,
              "edge endpoint out of range");
  FHP_REQUIRE(u != v, "self-loops are not allowed");
  edges_.emplace_back(u, v);
}

Graph Graph::from_sorted_unique_edges(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  FHP_DEBUG_ASSERT(std::is_sorted(edges.begin(), edges.end()) &&
                       std::adjacent_find(edges.begin(), edges.end()) ==
                           edges.end(),
                   "edge list must be sorted and unique");
  for ([[maybe_unused]] const auto& [u, v] : edges) {
    FHP_DEBUG_ASSERT(u < v && v < num_vertices,
                     "edges must be normalized (u < v) and in range");
  }
  return assemble_csr(num_vertices, edges);
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<VertexId> adjacency) {
  FHP_REQUIRE(!offsets.empty() && offsets.front() == 0 &&
                  offsets.back() == adjacency.size(),
              "offsets must span the adjacency array");
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
#ifndef NDEBUG
  g.validate();
#endif
  return g;
}

Graph Graph::assemble_csr(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph g;
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_vertices) + 1,
                                  0);
  for (const auto& [u, v] : edges) {
    ++counts[u + 1];
    ++counts[v + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  g.offsets_ = counts;
  g.adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  // Insert in two ordered passes so each neighbor list ends up sorted:
  // first the (u, v) direction in edge order (v ascending per u because the
  // edge list is sorted), then the reverse direction.
  for (const auto& [u, v] : edges) g.adjacency_[cursor[u]++] = v;
  for (const auto& [u, v] : edges) g.adjacency_[cursor[v]++] = u;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

Graph GraphBuilder::build() && {
  // Normalize to (min, max), sort, dedupe.
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return Graph::assemble_csr(num_vertices_, edges_);
}

}  // namespace fhp

/// \file matching.hpp
/// Maximum bipartite matching (Hopcroft–Karp) and König minimum vertex
/// cover.
///
/// The paper completes the boundary partition with the greedy Complete-Cut
/// rule and proves it within 1 of optimal for connected boundary graphs.
/// Because the boundary graph is bipartite, the *exact* optimum (minimum
/// number of "loser" nets = minimum vertex cover) is computable in
/// polynomial time via König's theorem — this module provides that exact
/// reference, used both as an alternative completion strategy and to
/// verify the paper's within-1 theorem empirically.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace fhp {

/// Result of maximum matching on a bipartite graph.
struct MatchingResult {
  /// match[v] = matched partner or kInvalidVertex.
  std::vector<VertexId> match;
  /// Number of matched pairs.
  VertexId size = 0;
};

/// Hopcroft–Karp maximum matching. \p side must be a proper 2-coloring of
/// \p g (0/1 per vertex); vertices with side 0 form the left class.
/// O(E * sqrt(V)).
[[nodiscard]] MatchingResult max_bipartite_matching(
    const Graph& g, const std::vector<std::uint8_t>& side);

/// König construction: given a maximum matching, returns a minimum vertex
/// cover (marker per vertex). |cover| == matching size; the complement is
/// a maximum independent set.
[[nodiscard]] std::vector<std::uint8_t> minimum_vertex_cover(
    const Graph& g, const std::vector<std::uint8_t>& side,
    const MatchingResult& matching);

}  // namespace fhp

/// \file cache.hpp
/// Instance-level result cache of the partition daemon: maps
/// (hypergraph fingerprint, partitioning configuration) to a finished
/// EngineResult, evicting least-recently-used entries when the resident
/// bytes exceed the configured budget.
///
/// Keys use Hypergraph::fingerprint() (128-bit content hash) mixed with a
/// hash of the request configuration, so the same netlist partitioned with
/// a different seed, start budget, engine, or refiner occupies its own
/// entry. Deadline-degraded results are never inserted (scheduler.cpp) —
/// the cache only holds full-quality answers, keeping hits bit-identical
/// to a direct partition_auto() call at the same configuration.
///
/// Thread-safe: one mutex guards the map + LRU list (operations are O(1)
/// hash/splice work, far below partitioning cost). Counters cache/{hits,
/// misses,evictions,bytes} go to the obs layer AND to internal atomics so
/// the stats op works in tracing-off builds.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "hypergraph/hypergraph.hpp"
#include "multilevel/engine.hpp"

namespace fhp::serve {

/// Cache key: hypergraph content fingerprint + configuration hash.
struct CacheKey {
  Hypergraph::Fingerprint instance;
  std::uint64_t config = 0;
  bool operator==(const CacheKey&) const = default;
};

/// Configuration hash covering every request knob that changes the result
/// (seed, start budget, engine, refiner). Deadline fields are excluded —
/// degraded results bypass the cache entirely.
[[nodiscard]] std::uint64_t config_hash(std::uint64_t seed, int starts,
                                        ml::EngineChoice engine,
                                        ml::RefinerChoice refiner) noexcept;

/// Hasher for CacheKey-keyed maps (the cache index, the scheduler's
/// in-flight table).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept;
};

/// Running totals, readable without the obs layer.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t entries = 0;
};

/// LRU-by-bytes cache of EngineResults.
class ResultCache {
 public:
  /// \p max_bytes bounds the resident payload bytes (sides vectors plus a
  /// fixed per-entry overhead estimate); 0 disables caching entirely
  /// (every lookup misses, inserts are dropped).
  explicit ResultCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the cached result and refreshes recency (counted as a hit),
  /// or nullopt. A lookup failure is NOT counted as a miss here: whether
  /// it becomes one depends on what the scheduler does next (coalesce
  /// onto an in-flight twin -> hit; admit as leader -> note_miss()).
  [[nodiscard]] std::optional<ml::EngineResult> lookup(const CacheKey& key);

  /// Counts one miss: called when a request is admitted as the leader of
  /// a new flight (scheduler.cpp). Counting at admission rather than at
  /// lookup keeps misses == unique executed keys even when followers race
  /// the leader (their lookups fail too, but they coalesce into hits).
  void note_miss();

  /// Inserts (or refreshes) an entry, then evicts LRU entries until the
  /// byte budget holds. An entry larger than the whole budget is dropped.
  void insert(const CacheKey& key, const ml::EngineResult& result);

  /// Counts a request served from an in-flight computation (single-flight
  /// coalescing, scheduler.hpp) as a cache hit. Keeping the hit/miss
  /// totals timing-independent — misses == unique keys, hits == the rest —
  /// is what lets the benchdiff sentinel gate them exactly.
  void note_coalesced_hit();

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    ml::EngineResult result;
    std::uint64_t bytes = 0;
  };
  /// Resident-byte estimate of one entry (payload + bookkeeping).
  [[nodiscard]] static std::uint64_t entry_bytes(
      const ml::EngineResult& result) noexcept;

  /// Evicts from the LRU tail until resident_bytes_ <= max_bytes_.
  /// Requires the lock.
  void evict_to_budget();

  /// Publishes the byte/entry gauges to the obs layer. Requires the lock.
  void publish_gauges() const;

  const std::uint64_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fhp::serve

/// \file scheduler.hpp
/// Request scheduler of the partition daemon: admission control, result
/// caching with single-flight coalescing, deadline-aware budget mapping,
/// and batched dispatch over one ThreadPool (docs/serving.md).
///
/// Execution model. Connection threads call Scheduler::partition(), which
/// blocks until the answer is ready. The fast paths never touch the
/// dispatcher: a result-cache hit (or a request coalesced onto an
/// in-flight identical request) is answered in the connection thread, so
/// hot requests cost a fingerprint plus a map lookup. Everything else is
/// admitted into a bounded FIFO queue — full queue means an immediate
/// typed rejection, the daemon never builds unbounded backlog — and a
/// dispatcher thread drains it: consecutive *small* instances are batched
/// and mapped across the pool's lanes (one serial engine run per lane),
/// while a *large* instance gets the whole pool via the parallel engine.
///
/// Determinism. Single-flight coalescing makes the cache counters exact:
/// within one scheduler lifetime, cache/misses counts unique
/// (fingerprint, configuration) keys and cache/hits counts every other
/// full-quality request, independent of timing (a request arriving while
/// its twin computes waits for that flight instead of recomputing).
/// Deadline requests bypass the cache and coalescing entirely and their
/// start budget derives from the *requested* deadline (not remaining
/// time), so with a pinned per-start cost estimate the whole response is
/// a pure function of the request — bench_serve's deadline gate depends
/// on this.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "util/parallel.hpp"

namespace fhp::serve {

/// Scheduler knobs (daemon flags map onto these 1:1).
struct SchedulerOptions {
  /// Pool lanes for dispatch (0 = FHP_THREADS, see resolve_threads()).
  int threads = 0;
  /// Admission bound: jobs queued-but-not-dispatched beyond this are
  /// rejected typed. Coalesced and cache-hit requests never occupy slots.
  std::size_t max_queue = 64;
  /// Result-cache resident-byte budget (0 disables caching).
  std::uint64_t cache_bytes = 64u << 20;
  /// Instances below this many modules are batch candidates; at or above
  /// it they run alone with the full pool (matches the engine's own
  /// flat/multilevel crossover by default).
  VertexId batch_threshold = ml::kDefaultMultilevelThreshold;
  /// Most small jobs dispatched as one batch across the pool.
  std::size_t max_batch = 8;
  /// Seed of the per-start cost EWMA (microseconds) used by the deadline
  /// mapping until real completions train it.
  std::int64_t initial_start_cost_us = 500;
};

/// Deadline -> multi-start budget decision (a pure function, exported so
/// tests and bench_serve reproduce daemon responses bit-for-bit).
struct BudgetDecision {
  int effective_starts = 0;
  bool degraded = false;
};

/// Maps a latency budget to an effective multi-start budget: half the
/// deadline is allotted to starts at \p est_start_cost_us apiece (the
/// other half covers ingest, refinement, and response), clamped to
/// [1, requested]. deadline_us == 0 means no deadline (full budget).
/// degraded is set iff the budget was truncated; a degraded run also
/// drops flow refinement (see make_plan), trading quality for the SLA.
[[nodiscard]] BudgetDecision map_deadline(int requested_starts,
                                          std::int64_t deadline_us,
                                          std::int64_t est_start_cost_us);

/// The one place request options become an engine PartitionPlan: seed and
/// start budgets are threaded through, and a degraded budget downgrades
/// the refiner to plain FM. Thread count is intentionally NOT set here —
/// the partition is bit-identical at any thread count, so replaying
/// make_plan(options, budget) serially reproduces a daemon response
/// exactly (bench_serve's audit does precisely that).
[[nodiscard]] ml::PartitionPlan make_plan(const RequestOptions& options,
                                          const BudgetDecision& budget);

/// Outcome of one partition request (the transport-independent core of a
/// protocol Response).
struct ScheduleResult {
  std::string status;  ///< "ok" | "rejected" | "error"
  std::string error;
  ml::EngineChoice engine_used = ml::EngineChoice::kFlat;
  int levels = 0;
  bool cached = false;
  bool degraded = false;
  int starts_used = 0;
  std::int64_t latency_us = 0;
  PartitionMetrics metrics;
  std::vector<std::uint8_t> sides;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
};

/// The daemon's brain; one instance per daemon process.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Partitions \p h per \p options; blocks until the response is ready
  /// (cache hit), rejected, or computed. Never throws on bad scheduling
  /// states — those come back as typed statuses.
  [[nodiscard]] ScheduleResult partition(Hypergraph&& h,
                                         const RequestOptions& options);

  /// One JSON object with cache / queue / pool / request statistics
  /// (works in tracing-off builds: the sources are internal atomics, not
  /// the obs registry).
  [[nodiscard]] std::string stats_json() const;

  /// Test hook: a paused scheduler admits (or rejects) but does not
  /// dispatch, making queue-full rejection deterministic to provoke.
  void pause();
  void resume();

  /// Rejects all queued jobs and stops the dispatcher. Called by the
  /// destructor; idempotent.
  void stop();

 private:
  struct Job {
    Hypergraph hypergraph;
    RequestOptions options;
    CacheKey key;
    bool use_cache = false;  ///< leader of a cacheable flight
    BudgetDecision budget;
    bool small = false;
    // Outcome, guarded by Scheduler::mutex_; done_cv_ broadcasts.
    bool done = false;
    ScheduleResult result;
  };

  void dispatcher_loop();
  /// Executes one job's engine run with the given lane budget (no locks
  /// held).
  static void execute(Job& job, int threads);
  /// Publishes a finished job: cache insert, flight retirement, waiter
  /// wake-up. Takes mutex_.
  void complete(const std::shared_ptr<Job>& job);
  /// Blocks until \p job completes; returns its result.
  [[nodiscard]] ScheduleResult await(const std::shared_ptr<Job>& job);

  const SchedulerOptions options_;
  ThreadPool pool_;
  ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;  ///< wakes the dispatcher
  std::condition_variable done_cv_;      ///< wakes submitters awaiting jobs
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<CacheKey, std::shared_ptr<Job>, CacheKeyHash> inflight_;
  bool paused_ = false;
  bool stopped_ = false;

  // Request statistics (atomics so stats_json works without the lock and
  // in tracing-off builds).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> degraded_{0};
  /// EWMA of observed per-start cost in microseconds (the deadline
  /// mapping's estimate when a request does not pin one).
  std::atomic<std::int64_t> est_start_cost_us_;

  std::thread dispatcher_;
};

}  // namespace fhp::serve

#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "util/json.hpp"

namespace fhp::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t elapsed_us(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

}  // namespace

BudgetDecision map_deadline(int requested_starts, std::int64_t deadline_us,
                            std::int64_t est_start_cost_us) {
  FHP_REQUIRE(requested_starts >= 1, "start budget must be >= 1");
  if (deadline_us <= 0) return {requested_starts, false};
  const std::int64_t per_start = std::max<std::int64_t>(1, est_start_cost_us);
  const std::int64_t affordable = (deadline_us / 2) / per_start;
  const int effective = static_cast<int>(std::clamp<std::int64_t>(
      affordable, 1, requested_starts));
  return {effective, effective < requested_starts};
}

ml::PartitionPlan make_plan(const RequestOptions& options,
                            const BudgetDecision& budget) {
  ml::PartitionPlan plan;
  plan.engine = options.engine;
  plan.algorithm1.seed = options.seed;
  plan.algorithm1.num_starts = budget.effective_starts;
  // A degraded budget also drops flow refinement: corridor flow is the
  // most expensive per-level phase and its cost does not shrink with the
  // start budget, so it is the first quality knob the deadline sacrifices.
  plan.refiner =
      budget.degraded ? ml::RefinerChoice::kFm : options.refiner;
  plan.coarse_num_starts = std::min(ml::default_initial_options().num_starts,
                                    budget.effective_starts);
  return plan;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options),
      pool_(options.threads),
      cache_(options.cache_bytes),
      est_start_cost_us_(std::max<std::int64_t>(
          1, options.initial_start_cost_us)) {
  FHP_GAUGE_SET("pool/lanes", pool_.lane_count());
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::stop() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    orphaned.swap(queue_);
    for (const auto& job : orphaned) {
      job->result.status = "rejected";
      job->result.error = "scheduler shutting down";
      job->done = true;
      inflight_.erase(job->key);
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  dispatch_cv_.notify_all();
  done_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

ScheduleResult Scheduler::partition(Hypergraph&& h,
                                    const RequestOptions& options) {
  const Clock::time_point admitted = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  FHP_COUNTER_ADD("serve/requests", 1);

  const bool has_deadline = options.deadline_us > 0;
  // Deadline requests compute their budget from the full requested
  // deadline up front (never from remaining time), so the response is a
  // pure function of the request when the per-start cost is pinned.
  const BudgetDecision budget =
      has_deadline
          ? map_deadline(options.starts, options.deadline_us,
                         options.assume_start_cost_us > 0
                             ? options.assume_start_cost_us
                             : est_start_cost_us_.load(
                                   std::memory_order_relaxed))
          : BudgetDecision{options.starts, false};

  // The fingerprint is the expensive part of the cache key; compute it
  // before taking the scheduler lock.
  CacheKey key;
  const bool cacheable = !has_deadline && options_.cache_bytes > 0;
  if (cacheable) {
    key = CacheKey{h.fingerprint(),
                   config_hash(options.seed, options.starts, options.engine,
                               options.refiner)};
  }

  std::shared_ptr<Job> job;
  std::shared_ptr<Job> flight;  ///< someone else's identical in-flight job
  {
    std::unique_lock<std::mutex> lock(mutex_);
    FHP_GAUGE_SET("serve/queue_depth", static_cast<double>(queue_.size()));
    FHP_GAUGE_SET("pool/pending_chunks",
                  static_cast<double>(pool_.pending_chunks()));
    if (cacheable) {
      // Lookup + in-flight check + admission are one atomic step under
      // mutex_, so exactly one request per unique key ever executes.
      if (std::optional<ml::EngineResult> hit = cache_.lookup(key)) {
        ScheduleResult result;
        result.status = "ok";
        result.engine_used = hit->engine_used;
        result.levels = hit->levels;
        result.cached = true;
        result.starts_used = options.starts;
        result.metrics = hit->metrics;
        result.sides = std::move(hit->sides);
        result.latency_us = elapsed_us(admitted);
        completed_.fetch_add(1, std::memory_order_relaxed);
        FHP_HIST_RECORD("serve/latency_us", result.latency_us);
        FHP_HIST_RECORD("serve/cached_latency_us", result.latency_us);
        return result;
      }
      if (const auto it = inflight_.find(key); it != inflight_.end()) {
        flight = it->second;
      }
    }
    if (flight == nullptr) {
      if (stopped_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        FHP_COUNTER_ADD("serve/rejected", 1);
        ScheduleResult rejected;
        rejected.status = "rejected";
        rejected.error = "scheduler shutting down";
        return rejected;
      }
      if (queue_.size() >= options_.max_queue) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        FHP_COUNTER_ADD("serve/rejected", 1);
        ScheduleResult rejected;
        rejected.status = "rejected";
        rejected.error = "queue full (" + std::to_string(queue_.size()) +
                         " jobs pending, limit " +
                         std::to_string(options_.max_queue) + ")";
        return rejected;
      }
      job = std::make_shared<Job>();
      job->hypergraph = std::move(h);
      job->options = options;
      job->key = key;
      job->use_cache = cacheable;
      job->budget = budget;
      job->small =
          job->hypergraph.num_vertices() < options_.batch_threshold;
      queue_.push_back(job);
      if (cacheable) {
        inflight_.emplace(key, job);
        // The miss is counted at admission, not lookup: a follower whose
        // lookup also failed coalesces into a hit, so misses stay equal
        // to unique executed keys regardless of timing.
        cache_.note_miss();
      }
    }
  }

  if (flight != nullptr) {
    // Single-flight coalescing: ride the identical in-flight request.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    FHP_COUNTER_ADD("serve/coalesced", 1);
    ScheduleResult result = await(flight);
    if (result.ok()) {
      cache_.note_coalesced_hit();
      result.cached = true;
      result.starts_used = options.starts;
    }
    result.latency_us = elapsed_us(admitted);
    if (result.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      FHP_HIST_RECORD("serve/latency_us", result.latency_us);
    }
    return result;
  }

  dispatch_cv_.notify_one();
  ScheduleResult result = await(job);
  result.latency_us = elapsed_us(admitted);
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (result.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      FHP_COUNTER_ADD("serve/degraded", 1);
    }
    FHP_HIST_RECORD("serve/latency_us", result.latency_us);
    FHP_HIST_RECORD("serve/computed_latency_us", result.latency_us);
    // Train the per-start cost estimate for future deadline mappings.
    if (result.starts_used > 0) {
      const std::int64_t observed =
          std::max<std::int64_t>(1, result.latency_us / result.starts_used);
      const std::int64_t previous =
          est_start_cost_us_.load(std::memory_order_relaxed);
      est_start_cost_us_.store(previous + (observed - previous) / 4,
                               std::memory_order_relaxed);
    }
  } else if (result.status == "error") {
    errors_.fetch_add(1, std::memory_order_relaxed);
    FHP_COUNTER_ADD("serve/errors", 1);
  } else {
    FHP_COUNTER_ADD("serve/rejected", 1);
  }
  return result;
}

ScheduleResult Scheduler::await(const std::shared_ptr<Job>& job) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job->done; });
  return job->result;
}

void Scheduler::execute(Job& job, int threads) {
  try {
    ml::PartitionPlan plan = make_plan(job.options, job.budget);
    // The thread count steers only wall time, never the result (engine
    // determinism contract), so it is set here and not in make_plan.
    plan.algorithm1.threads = threads;
    const ml::EngineResult engine =
        ml::partition_auto(job.hypergraph, plan);
    job.result.status = "ok";
    job.result.engine_used = engine.engine_used;
    job.result.levels = engine.levels;
    job.result.degraded = job.budget.degraded;
    job.result.starts_used = job.budget.effective_starts;
    job.result.metrics = engine.metrics;
    job.result.sides = engine.sides;
  } catch (const std::exception& error) {
    job.result.status = "error";
    job.result.error = error.what();
  }
}

void Scheduler::complete(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->use_cache) {
      if (job->result.ok()) {
        ml::EngineResult entry;
        entry.sides = job->result.sides;
        entry.metrics = job->result.metrics;
        entry.engine_used = job->result.engine_used;
        entry.levels = job->result.levels;
        cache_.insert(job->key, entry);
      }
      inflight_.erase(job->key);
    }
    job->done = true;
  }
  done_cv_.notify_all();
}

void Scheduler::dispatcher_loop() {
  while (true) {
    std::vector<std::shared_ptr<Job>> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      dispatch_cv_.wait(lock, [&] {
        return stopped_ || (!paused_ && !queue_.empty());
      });
      if (stopped_) return;
      batch.push_back(queue_.front());
      queue_.pop_front();
      if (batch.front()->small) {
        // Gather consecutive small jobs so one pool region amortizes
        // dispatch over all lanes. FIFO order is preserved: only a
        // contiguous prefix of the queue is taken.
        while (!queue_.empty() && queue_.front()->small &&
               batch.size() < options_.max_batch) {
          batch.push_back(queue_.front());
          queue_.pop_front();
        }
      }
    }
    if (batch.size() == 1) {
      // A lone job gets every lane: a large instance's engine
      // parallelizes internally, and for a small one the extra lanes
      // cost nothing (the engine's serial fast path ignores them).
      execute(*batch.front(),
              batch.front()->small ? 1 : pool_.lane_count());
      complete(batch.front());
    } else {
      FHP_COUNTER_ADD("serve/batches", 1);
      // One serial engine run per lane (threads = 1), so batched jobs
      // never nest parallel regions inside the pool's own region.
      pool_.parallel_for(batch.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             execute(*batch[i], 1);
                           }
                         });
      for (const auto& job : batch) complete(job);
    }
  }
}

std::string Scheduler::stats_json() const {
  const CacheStats cache = cache_.stats();
  std::size_t depth = 0;
  std::size_t in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    depth = queue_.size();
    in_flight = inflight_.size();
  }
  json::Writer w;
  w.begin_object();
  w.key("cache").begin_object();
  w.member("hits", cache.hits);
  w.member("misses", cache.misses);
  w.member("evictions", cache.evictions);
  w.member("bytes", cache.resident_bytes);
  w.member("entries", cache.entries);
  w.end_object();
  w.key("queue").begin_object();
  w.member("depth", depth);
  w.member("capacity", options_.max_queue);
  w.member("in_flight_keys", in_flight);
  w.end_object();
  w.key("pool").begin_object();
  w.member("lanes", pool_.lane_count());
  w.member("pending_chunks", pool_.pending_chunks());
  w.end_object();
  w.key("requests").begin_object();
  w.member("total", requests_.load(std::memory_order_relaxed));
  w.member("completed", completed_.load(std::memory_order_relaxed));
  w.member("coalesced", coalesced_.load(std::memory_order_relaxed));
  w.member("rejected", rejected_.load(std::memory_order_relaxed));
  w.member("errors", errors_.load(std::memory_order_relaxed));
  w.member("degraded", degraded_.load(std::memory_order_relaxed));
  w.end_object();
  w.member("est_start_cost_us",
           est_start_cost_us_.load(std::memory_order_relaxed));
  w.end_object();
  return std::move(w).take();
}

}  // namespace fhp::serve

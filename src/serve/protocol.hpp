/// \file protocol.hpp
/// Wire protocol of the partition daemon (docs/serving.md): length-prefixed
/// JSON frames over a unix-domain stream socket.
///
/// Frame layout: a 4-byte little-endian payload length, then exactly that
/// many payload bytes (one JSON document). The hostile-input policy mirrors
/// the parser stacks (docs/formats.md "Large instances"): a frame header is
/// validated against FrameLimits::max_frame_bytes BEFORE any allocation
/// proportional to the claimed size, so a forged multi-gigabyte length
/// prefix costs 4 bytes of reads and a typed ProtocolError, never an
/// allocation. Truncated frames (EOF mid-header or mid-payload) and
/// zero-length frames fail typed as well.
///
/// Payloads are JSON requests/responses (schemas below, serialized with
/// util/json's Writer and parsed with its reader). Unknown members are
/// ignored on read, so the protocol is forward-extensible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "multilevel/engine.hpp"
#include "partition/metrics.hpp"
#include "util/error.hpp"

namespace fhp::serve {

/// Malformed framing or request/response payload. Derives from IoError so
/// generic tooling can treat it as bad external input.
class ProtocolError : public IoError {
 public:
  using IoError::IoError;
};

/// Framing bounds, enforced on both ends.
struct FrameLimits {
  /// Largest admissible payload. The default fits a ~5M-module inline
  /// hMETIS netlist; raise it for bigger inline instances (the daemon and
  /// client must agree).
  std::uint32_t max_frame_bytes = 64u << 20;
};

/// Bytes of a frame header (the little-endian u32 payload length).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Encodes one frame (header + payload). Throws ProtocolError when the
/// payload is empty or exceeds \p limits.
[[nodiscard]] std::string encode_frame(std::string_view payload,
                                       const FrameLimits& limits = {});

/// Incremental frame decoder for a byte stream fed in arbitrary chunks.
/// Buffers at most one frame; the length prefix is validated against the
/// limits as soon as its 4 bytes are available — before any payload
/// buffering — so a hostile length costs nothing.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  /// Appends raw bytes from the stream.
  void feed(std::string_view bytes);

  /// Next complete payload, or nullopt when more bytes are needed.
  /// Throws ProtocolError on an invalid header (zero or oversized length).
  [[nodiscard]] std::optional<std::string> next();

  /// Call at end-of-stream: throws ProtocolError if a partial frame is
  /// buffered (the peer died mid-frame).
  void finish() const;

  /// Bytes currently buffered (tests assert the no-allocation policy).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  FrameLimits limits_;
  std::string buffer_;
};

/// Blocking read of one frame from \p fd. Returns nullopt on clean EOF at
/// a frame boundary; throws ProtocolError on truncation, a hostile header,
/// or a read error.
[[nodiscard]] std::optional<std::string> read_frame(
    int fd, const FrameLimits& limits = {});

/// Blocking write of one frame to \p fd. Throws ProtocolError on a write
/// error (including a peer that hung up) or an over-limit payload.
void write_frame(int fd, std::string_view payload,
                 const FrameLimits& limits = {});

// ---------------------------------------------------------------------------
// Request / response schemas
// ---------------------------------------------------------------------------

/// Per-request partitioning knobs (JSON member "options").
struct RequestOptions {
  std::uint64_t seed = 1;
  /// Multi-start budget the client asks for; the deadline mapping may
  /// truncate it (scheduler.hpp).
  int starts = 50;
  ml::EngineChoice engine = ml::EngineChoice::kAuto;
  ml::RefinerChoice refiner = ml::RefinerChoice::kFm;
  /// Latency budget in microseconds; 0 = none. A deadline request is
  /// answered within the budget by truncating the start budget (and
  /// skipping flow refinement) rather than by missing the SLA; such
  /// responses carry degraded = true and are never cached.
  std::int64_t deadline_us = 0;
  /// Pins the per-start cost estimate the deadline mapping divides by
  /// (microseconds); 0 = use the server's live EWMA. Pinning makes the
  /// deadline -> budget mapping a pure function — the load generator and
  /// the deadline tests rely on it for reproducible responses.
  std::int64_t assume_start_cost_us = 0;
};

/// One client request.
struct Request {
  enum class Op { kPartition, kPing, kStats, kShutdown };

  Op op = Op::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::int64_t id = 0;
  /// Inline hMETIS netlist text (op == kPartition only).
  std::string hypergraph;
  RequestOptions options;
};

/// One daemon response.
struct Response {
  std::int64_t id = 0;
  /// "ok" | "rejected" | "error". Rejections are admission-control
  /// decisions (bounded queue full, shutting down); errors are malformed
  /// requests (bad JSON, bad netlist) — both typed, neither kills the
  /// connection.
  std::string status;
  std::string error;  ///< diagnostic for rejected/error
  std::string engine;  ///< engine that produced the partition
  int levels = 0;
  bool cached = false;    ///< served from the instance result cache
  bool degraded = false;  ///< deadline truncated the quality budget
  int starts_used = 0;    ///< effective multi-start budget after mapping
  std::int64_t latency_us = 0;  ///< admission -> response, daemon-side
  Weight cut_weight = 0;
  EdgeId cut_edges = 0;
  std::vector<std::uint8_t> sides;  ///< side per module (empty on failure)
  /// Raw JSON payload for op == kStats ("{}" otherwise).
  std::string stats_json;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
};

/// Inverse of ml::to_string(EngineChoice); throws ProtocolError on an
/// unknown name (shared by the request parser and fhp_client's flags).
[[nodiscard]] ml::EngineChoice parse_engine(std::string_view name);

/// Inverse of ml::to_string(RefinerChoice); throws ProtocolError on an
/// unknown name.
[[nodiscard]] ml::RefinerChoice parse_refiner(std::string_view name);

/// Serializes a request payload (the client side of the protocol).
[[nodiscard]] std::string to_json(const Request& request);

/// Parses a request payload. Throws ProtocolError on malformed JSON, an
/// unknown op, or schema violations.
[[nodiscard]] Request parse_request(std::string_view payload);

/// Serializes a response payload (the daemon side).
[[nodiscard]] std::string to_json(const Response& response);

/// Parses a response payload. Throws ProtocolError on malformed JSON.
[[nodiscard]] Response parse_response(std::string_view payload);

}  // namespace fhp::serve

/// \file client.hpp
/// Client library for the partition daemon: connects to the unix socket,
/// speaks the framed JSON protocol, and offers blocking one-call
/// conveniences plus a send()/receive() split for pipelined load
/// generation (bench_serve's open-loop phases drive the two halves from
/// separate threads; the socket supports full-duplex use).
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace fhp::serve {

/// One connection to a daemon. Not thread-safe for concurrent send()s or
/// concurrent receive()s, but one sender thread plus one receiver thread
/// is supported (the two directions are independent).
class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon at \p socket_path. Throws IoError when the
  /// daemon is not reachable.
  void connect(const std::string& socket_path, FrameLimits limits = {});

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Fire-and-forget half: frames and writes one request.
  void send(const Request& request);

  /// Blocking read of the next response. Throws ProtocolError when the
  /// daemon hung up or the stream is corrupt.
  [[nodiscard]] Response receive();

  /// send() + receive() for the sequential case.
  [[nodiscard]] Response call(const Request& request);

  /// Partitions an inline hMETIS netlist.
  [[nodiscard]] Response partition(std::string hmetis_text,
                                   const RequestOptions& options = {});

  [[nodiscard]] Response ping();
  [[nodiscard]] Response stats();

  /// Asks the daemon to exit; returns its acknowledgement.
  [[nodiscard]] Response shutdown_server();

 private:
  int fd_ = -1;
  FrameLimits limits_;
  std::int64_t next_id_ = 1;
};

}  // namespace fhp::serve

#include "serve/cache.hpp"

#include "obs/counters.hpp"

namespace fhp::serve {

namespace {

/// splitmix64 finalizer (same mixer as Hypergraph::fingerprint()).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t config_hash(std::uint64_t seed, int starts,
                          ml::EngineChoice engine,
                          ml::RefinerChoice refiner) noexcept {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ static_cast<std::uint64_t>(starts));
  h = mix64(h ^ static_cast<std::uint64_t>(engine));
  h = mix64(h ^ static_cast<std::uint64_t>(refiner));
  return h;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const noexcept {
  return static_cast<std::size_t>(
      mix64(key.instance.hi ^ mix64(key.instance.lo ^ key.config)));
}

std::uint64_t ResultCache::entry_bytes(
    const ml::EngineResult& result) noexcept {
  // Payload is dominated by the sides vector; the constant approximates
  // the Entry struct + list node + index slot.
  return result.sides.size() + 256;
}

std::optional<ml::EngineResult> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  FHP_COUNTER_ADD("cache/hits", 1);
  return it->second->result;
}

void ResultCache::insert(const CacheKey& key, const ml::EngineResult& result) {
  const std::uint64_t bytes = entry_bytes(result);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > max_bytes_) return;  // larger than the whole budget
  if (const auto it = index_.find(key); it != index_.end()) {
    // Same key raced in twice (e.g. a degraded-path miss while a full run
    // completed); keep the newer result and refresh recency.
    resident_bytes_ -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = bytes;
    resident_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, result, bytes});
    index_.emplace(key, lru_.begin());
    resident_bytes_ += bytes;
  }
  evict_to_budget();
  publish_gauges();
}

void ResultCache::evict_to_budget() {
  while (resident_bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    FHP_COUNTER_ADD("cache/evictions", 1);
  }
}

void ResultCache::publish_gauges() const {
  FHP_GAUGE_SET("cache/bytes", static_cast<long long>(resident_bytes_));
  FHP_GAUGE_SET("cache/entries", static_cast<long long>(lru_.size()));
}

void ResultCache::note_miss() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  FHP_COUNTER_ADD("cache/misses", 1);
}

void ResultCache::note_coalesced_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++hits_;
  FHP_COUNTER_ADD("cache/hits", 1);
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return CacheStats{hits_, misses_, evictions_, resident_bytes_,
                    static_cast<std::uint64_t>(lru_.size())};
}

}  // namespace fhp::serve

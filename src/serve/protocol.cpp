#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "multilevel/flow_refine.hpp"
#include "util/json.hpp"

namespace fhp::serve {

namespace {

[[nodiscard]] std::uint32_t decode_le32(const char* bytes) noexcept {
  const auto* u = reinterpret_cast<const unsigned char*>(bytes);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

void encode_le32(std::uint32_t value, char out[kFrameHeaderBytes]) noexcept {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

/// Validates a decoded header length against the limits; the single choke
/// point of the fail-before-allocation policy.
void check_header(std::uint32_t payload_bytes, const FrameLimits& limits) {
  if (payload_bytes == 0) {
    throw ProtocolError("frame error: zero-length payload");
  }
  if (payload_bytes > limits.max_frame_bytes) {
    throw ProtocolError("frame error: payload length " +
                        std::to_string(payload_bytes) +
                        " exceeds limit of " +
                        std::to_string(limits.max_frame_bytes) + " bytes");
  }
}

}  // namespace

std::string encode_frame(std::string_view payload, const FrameLimits& limits) {
  if (payload.empty() || payload.size() > limits.max_frame_bytes) {
    throw ProtocolError("frame error: refusing to encode payload of " +
                        std::to_string(payload.size()) + " bytes (limit " +
                        std::to_string(limits.max_frame_bytes) + ")");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  char header[kFrameHeaderBytes];
  encode_le32(static_cast<std::uint32_t>(payload.size()), header);
  frame.append(header, kFrameHeaderBytes);
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Reject a hostile header before buffering grows past it: once the four
  // header bytes are visible, validate them even if the caller handed us a
  // giant chunk in one feed() call.
  if (buffer_.size() < kFrameHeaderBytes) {
    const std::size_t need = kFrameHeaderBytes - buffer_.size();
    const std::size_t take = std::min(need, bytes.size());
    buffer_.append(bytes.substr(0, take));
    bytes.remove_prefix(take);
    if (buffer_.size() >= kFrameHeaderBytes) {
      check_header(decode_le32(buffer_.data()), limits_);
    }
    if (bytes.empty()) return;
  }
  buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t payload_bytes = decode_le32(buffer_.data());
  check_header(payload_bytes, limits_);
  if (buffer_.size() < kFrameHeaderBytes + payload_bytes) return std::nullopt;
  std::string payload =
      buffer_.substr(kFrameHeaderBytes, payload_bytes);
  buffer_.erase(0, kFrameHeaderBytes + payload_bytes);
  if (buffer_.size() >= kFrameHeaderBytes) {
    check_header(decode_le32(buffer_.data()), limits_);
  }
  return payload;
}

void FrameDecoder::finish() const {
  if (!buffer_.empty()) {
    throw ProtocolError("frame error: stream ended mid-frame (" +
                        std::to_string(buffer_.size()) +
                        " bytes of a partial frame buffered)");
  }
}

namespace {

/// Reads exactly \p count bytes into \p out. Returns the number of bytes
/// read before EOF (== count unless the peer closed early); throws on a
/// hard read error.
std::size_t read_exact(int fd, char* out, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got = ::read(fd, out + done, count - done);
    if (got == 0) return done;  // EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("frame read failed: ") +
                          std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
  return done;
}

}  // namespace

std::optional<std::string> read_frame(int fd, const FrameLimits& limits) {
  char header[kFrameHeaderBytes];
  const std::size_t header_got = read_exact(fd, header, kFrameHeaderBytes);
  if (header_got == 0) return std::nullopt;  // clean EOF between frames
  if (header_got < kFrameHeaderBytes) {
    throw ProtocolError("frame error: stream ended inside a frame header");
  }
  const std::uint32_t payload_bytes = decode_le32(header);
  // Limit check strictly precedes the payload allocation below.
  check_header(payload_bytes, limits);
  std::string payload(payload_bytes, '\0');
  if (read_exact(fd, payload.data(), payload_bytes) < payload_bytes) {
    throw ProtocolError("frame error: stream ended mid-payload");
  }
  return payload;
}

void write_frame(int fd, std::string_view payload, const FrameLimits& limits) {
  const std::string frame = encode_frame(payload, limits);
  std::size_t done = 0;
  while (done < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not as
    // a process-killing SIGPIPE. Pipes (tests) take the plain-write path.
    ssize_t put = ::send(fd, frame.data() + done, frame.size() - done,
                         MSG_NOSIGNAL);
    if (put < 0 && errno == ENOTSOCK) {
      put = ::write(fd, frame.data() + done, frame.size() - done);
    }
    if (put < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("frame write failed: ") +
                          std::strerror(errno));
    }
    done += static_cast<std::size_t>(put);
  }
}

// ---------------------------------------------------------------------------
// JSON schemas
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] const char* to_string(Request::Op op) noexcept {
  switch (op) {
    case Request::Op::kPartition:
      return "partition";
    case Request::Op::kPing:
      return "ping";
    case Request::Op::kStats:
      return "stats";
    case Request::Op::kShutdown:
      return "shutdown";
  }
  return "ping";
}

[[nodiscard]] Request::Op parse_op(std::string_view name) {
  if (name == "partition") return Request::Op::kPartition;
  if (name == "ping") return Request::Op::kPing;
  if (name == "stats") return Request::Op::kStats;
  if (name == "shutdown") return Request::Op::kShutdown;
  throw ProtocolError("request error: unknown op \"" + std::string(name) +
                      "\"");
}

/// Integer member \p key of object \p node; \p fallback when absent.
/// Throws ProtocolError when present but not a number. The reader stores
/// numbers as double, so magnitudes must stay below 2^53 — every protocol
/// quantity (ids, budgets, microseconds) does.
[[nodiscard]] std::int64_t int_or(const json::Value& node,
                                  std::string_view key,
                                  std::int64_t fallback) {
  const json::Value* member = node.find(key);
  if (member == nullptr) return fallback;
  if (!member->is_number()) {
    throw ProtocolError("request error: member \"" + std::string(key) +
                        "\" must be a number");
  }
  return static_cast<std::int64_t>(member->as_number());
}

[[nodiscard]] const std::string& string_member(const json::Value& node,
                                               std::string_view key) {
  const json::Value* member = node.find(key);
  if (member == nullptr || !member->is_string()) {
    throw ProtocolError("protocol error: missing string member \"" +
                        std::string(key) + "\"");
  }
  return member->as_string();
}

[[nodiscard]] json::Value parse_document(std::string_view payload,
                                         const char* what) {
  try {
    return json::parse(payload);
  } catch (const IoError& error) {
    throw ProtocolError(std::string(what) + " error: " + error.what());
  }
}

}  // namespace

ml::EngineChoice parse_engine(std::string_view name) {
  if (name == "flat") return ml::EngineChoice::kFlat;
  if (name == "multilevel") return ml::EngineChoice::kMultilevel;
  if (name == "auto") return ml::EngineChoice::kAuto;
  throw ProtocolError("request error: unknown engine \"" + std::string(name) +
                      "\"");
}

ml::RefinerChoice parse_refiner(std::string_view name) {
  if (name == "fm") return ml::RefinerChoice::kFm;
  if (name == "flow") return ml::RefinerChoice::kFlow;
  if (name == "flow+fm") return ml::RefinerChoice::kFlowFm;
  throw ProtocolError("request error: unknown refiner \"" +
                      std::string(name) + "\"");
}

std::string to_json(const Request& request) {
  json::Writer w;
  w.begin_object();
  w.member("op", to_string(request.op));
  w.member("id", request.id);
  if (request.op == Request::Op::kPartition) {
    w.member("hypergraph", request.hypergraph);
    const RequestOptions& o = request.options;
    w.key("options").begin_object();
    w.member("seed", o.seed);
    w.member("starts", o.starts);
    w.member("engine", ml::to_string(o.engine));
    w.member("refiner", ml::to_string(o.refiner));
    if (o.deadline_us > 0) w.member("deadline_us", o.deadline_us);
    if (o.assume_start_cost_us > 0) {
      w.member("assume_start_cost_us", o.assume_start_cost_us);
    }
    w.end_object();
  }
  w.end_object();
  return std::move(w).take();
}

Request parse_request(std::string_view payload) {
  const json::Value doc = parse_document(payload, "request");
  if (!doc.is_object()) {
    throw ProtocolError("request error: payload must be a JSON object");
  }
  Request request;
  request.op = parse_op(string_member(doc, "op"));
  request.id = int_or(doc, "id", 0);
  if (request.op == Request::Op::kPartition) {
    request.hypergraph = string_member(doc, "hypergraph");
    if (const json::Value* options = doc.find("options");
        options != nullptr) {
      if (!options->is_object()) {
        throw ProtocolError("request error: \"options\" must be an object");
      }
      RequestOptions& o = request.options;
      o.seed = static_cast<std::uint64_t>(int_or(*options, "seed", 1));
      o.starts = static_cast<int>(int_or(*options, "starts", o.starts));
      if (o.starts < 1) {
        throw ProtocolError("request error: starts must be >= 1");
      }
      if (const json::Value* engine = options->find("engine");
          engine != nullptr && engine->is_string()) {
        o.engine = parse_engine(engine->as_string());
      }
      if (const json::Value* refiner = options->find("refiner");
          refiner != nullptr && refiner->is_string()) {
        o.refiner = parse_refiner(refiner->as_string());
      }
      o.deadline_us = int_or(*options, "deadline_us", 0);
      o.assume_start_cost_us = int_or(*options, "assume_start_cost_us", 0);
      if (o.deadline_us < 0 || o.assume_start_cost_us < 0) {
        throw ProtocolError("request error: deadlines must be non-negative");
      }
    }
  }
  return request;
}

std::string to_json(const Response& response) {
  json::Writer w;
  w.begin_object();
  w.member("id", response.id);
  w.member("status", response.status);
  if (!response.error.empty()) w.member("error", response.error);
  if (!response.engine.empty()) {
    w.member("engine", response.engine);
    w.member("levels", response.levels);
    w.member("cached", response.cached);
    w.member("degraded", response.degraded);
    w.member("starts_used", response.starts_used);
    w.member("cut_weight", response.cut_weight);
    w.member("cut_edges", response.cut_edges);
    // Sides travel as a '0'/'1' digit string: one byte per module instead
    // of ~2 as a JSON array, and immune to the reader's double storage.
    std::string sides;
    sides.reserve(response.sides.size());
    for (const std::uint8_t side : response.sides) {
      sides.push_back(side != 0 ? '1' : '0');
    }
    w.member("sides", sides);
  }
  w.member("latency_us", response.latency_us);
  if (!response.stats_json.empty()) {
    w.member_raw("stats", response.stats_json);
  }
  w.end_object();
  return std::move(w).take();
}

Response parse_response(std::string_view payload) {
  const json::Value doc = parse_document(payload, "response");
  if (!doc.is_object()) {
    throw ProtocolError("response error: payload must be a JSON object");
  }
  Response response;
  response.id = int_or(doc, "id", 0);
  response.status = string_member(doc, "status");
  if (const json::Value* error = doc.find("error");
      error != nullptr && error->is_string()) {
    response.error = error->as_string();
  }
  if (const json::Value* engine = doc.find("engine");
      engine != nullptr && engine->is_string()) {
    response.engine = engine->as_string();
    response.levels = static_cast<int>(int_or(doc, "levels", 0));
    if (const json::Value* cached = doc.find("cached");
        cached != nullptr && cached->is_bool()) {
      response.cached = cached->as_bool();
    }
    if (const json::Value* degraded = doc.find("degraded");
        degraded != nullptr && degraded->is_bool()) {
      response.degraded = degraded->as_bool();
    }
    response.starts_used = static_cast<int>(int_or(doc, "starts_used", 0));
    response.cut_weight = static_cast<Weight>(int_or(doc, "cut_weight", 0));
    response.cut_edges = static_cast<EdgeId>(int_or(doc, "cut_edges", 0));
    const std::string& sides = string_member(doc, "sides");
    response.sides.reserve(sides.size());
    for (const char digit : sides) {
      if (digit != '0' && digit != '1') {
        throw ProtocolError("response error: sides must be '0'/'1' digits");
      }
      response.sides.push_back(digit == '1' ? 1 : 0);
    }
  }
  response.latency_us = int_or(doc, "latency_us", 0);
  if (const json::Value* stats = doc.find("stats"); stats != nullptr) {
    response.stats_json = json::dump(*stats);
  }
  return response;
}

}  // namespace fhp::serve

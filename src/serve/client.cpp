#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fhp::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      limits_(other.limits_),
      next_id_(other.next_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    limits_ = other.limits_;
    next_id_ = other.next_id_;
  }
  return *this;
}

void Client::connect(const std::string& socket_path, FrameLimits limits) {
  FHP_REQUIRE(!connected(), "client is already connected");
  FHP_REQUIRE(socket_path.size() < sizeof(sockaddr_un{}.sun_path),
              "socket path too long for AF_UNIX");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw IoError("connect(" + socket_path + ") failed: " + reason);
  }
  fd_ = fd;
  limits_ = limits;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const Request& request) {
  FHP_REQUIRE(connected(), "client is not connected");
  write_frame(fd_, to_json(request), limits_);
}

Response Client::receive() {
  FHP_REQUIRE(connected(), "client is not connected");
  std::optional<std::string> payload = read_frame(fd_, limits_);
  if (!payload.has_value()) {
    throw ProtocolError("daemon closed the connection");
  }
  return parse_response(*payload);
}

Response Client::call(const Request& request) {
  send(request);
  return receive();
}

Response Client::partition(std::string hmetis_text,
                           const RequestOptions& options) {
  Request request;
  request.op = Request::Op::kPartition;
  request.id = next_id_++;
  request.hypergraph = std::move(hmetis_text);
  request.options = options;
  return call(request);
}

Response Client::ping() {
  Request request;
  request.op = Request::Op::kPing;
  request.id = next_id_++;
  return call(request);
}

Response Client::stats() {
  Request request;
  request.op = Request::Op::kStats;
  request.id = next_id_++;
  return call(request);
}

Response Client::shutdown_server() {
  Request request;
  request.op = Request::Op::kShutdown;
  request.id = next_id_++;
  return call(request);
}

}  // namespace fhp::serve

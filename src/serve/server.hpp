/// \file server.hpp
/// The partition daemon's transport: a unix-domain stream socket speaking
/// the length-prefixed JSON protocol (protocol.hpp), one thread per
/// connection, all partitioning delegated to the Scheduler.
///
/// A connection processes its requests sequentially (responses come back
/// in request order); concurrency across clients comes from one thread
/// per connection all funneling into the shared scheduler, whose
/// admission control bounds the damage any client mix can do. Malformed
/// frames or requests are answered with typed error responses where
/// possible and at worst close that one connection — never the daemon.
#pragma once

#include <string>

#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace fhp::serve {

/// Daemon configuration (CLI flags of tools/fhp_serve map onto this).
struct ServerOptions {
  /// Filesystem path to bind the AF_UNIX socket at. A stale socket file
  /// from a dead daemon is unlinked on startup; a live one fails bind
  /// with a typed error.
  std::string socket_path;
  SchedulerOptions scheduler;
  FrameLimits limits;
};

/// The daemon. Construct, start(), then wait() until a shutdown request
/// arrives (or call shutdown() from another thread; tests run it
/// in-process this way).
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept loop. Throws IoError when the
  /// socket cannot be bound.
  void start();

  /// Blocks until shutdown() is triggered (by a shutdown request or
  /// another thread).
  void wait();

  /// Stops accepting, unblocks every connection, drains their threads,
  /// and stops the scheduler. Idempotent, callable from any thread
  /// (including a connection thread handling a shutdown request).
  void shutdown();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

  /// The scheduler, exposed for in-process tests and stats.
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }

 private:
  struct Impl;

  void accept_loop();
  void serve_connection(int fd);
  /// Builds the response to one parsed request (partition/ping/stats);
  /// a shutdown request gets its ok response in serve_connection before
  /// the shutdown is triggered.
  [[nodiscard]] Response handle(const Request& request);

  ServerOptions options_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fhp::serve

#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "hypergraph/io.hpp"
#include "obs/counters.hpp"

namespace fhp::serve {

namespace {

[[nodiscard]] std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Server::Impl {
  int listen_fd = -1;
  std::thread accept_thread;
  std::mutex mutex;
  std::condition_variable shutdown_cv;
  bool shutting_down = false;
  /// Live connection fds, so shutdown() can unblock their read loops.
  std::vector<int> connection_fds;
  std::vector<std::thread> connection_threads;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(std::make_unique<Scheduler>(options_.scheduler)),
      impl_(std::make_unique<Impl>()) {
  FHP_REQUIRE(!options_.socket_path.empty(), "socket path must be set");
  FHP_REQUIRE(options_.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
              "socket path too long for AF_UNIX");
}

Server::~Server() { shutdown(); }

void Server::start() {
  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    throw IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A leftover socket file from a crashed daemon would fail bind with
  // EADDRINUSE even though nobody is listening; probe with connect() so a
  // live daemon is still protected.
  if (::connect(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw IoError("another daemon is already listening on " +
                  options_.socket_path);
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw IoError("bind(" + options_.socket_path + ") failed: " + reason);
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw IoError("listen(" + options_.socket_path + ") failed: " + reason);
  }
  impl_->accept_thread = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->shutdown_cv.wait(lock, [&] { return impl_->shutting_down; });
  lock.unlock();
  // Finish teardown on the waiting thread (shutdown() may have been
  // triggered from a connection thread, which cannot join itself).
  shutdown();
}

void Server::shutdown() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
    fds = impl_->connection_fds;
  }
  impl_->shutdown_cv.notify_all();
  if (impl_->listen_fd >= 0) {
    // Unblocks accept(); the loop sees shutting_down and exits.
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  // Joining is serialized so concurrent shutdown() calls don't both join;
  // a connection thread running shutdown() skips joining itself.
  static std::mutex join_mutex;
  std::lock_guard<std::mutex> join_lock(join_mutex);
  if (impl_->accept_thread.joinable() &&
      impl_->accept_thread.get_id() != std::this_thread::get_id()) {
    impl_->accept_thread.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    threads.swap(impl_->connection_threads);
  }
  for (std::thread& t : threads) {
    if (t.get_id() == std::this_thread::get_id()) {
      t.detach();  // a connection thread triggered the shutdown
    } else if (t.joinable()) {
      t.join();
    }
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    ::unlink(options_.socket_path.c_str());
  }
  scheduler_->stop();
}

void Server::accept_loop() {
  while (true) {
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      if (impl_->shutting_down) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listener broken; daemon keeps serving open connections
      }
      impl_->connection_fds.push_back(fd);
      impl_->connection_threads.emplace_back(
          [this, fd] { serve_connection(fd); });
      FHP_COUNTER_ADD("serve/connections", 1);
    }
  }
}

Response Server::handle(const Request& request) {
  Response response;
  response.id = request.id;
  switch (request.op) {
    case Request::Op::kPing:
      response.status = "ok";
      break;
    case Request::Op::kStats:
      response.status = "ok";
      response.stats_json = scheduler_->stats_json();
      break;
    case Request::Op::kShutdown:
      response.status = "ok";
      break;
    case Request::Op::kPartition: {
      const std::int64_t start = now_us();
      try {
        Hypergraph h = read_hmetis(request.hypergraph);
        ScheduleResult scheduled =
            scheduler_->partition(std::move(h), request.options);
        response.status = scheduled.status;
        response.error = scheduled.error;
        if (scheduled.ok()) {
          response.engine = ml::to_string(scheduled.engine_used);
          response.levels = scheduled.levels;
          response.cached = scheduled.cached;
          response.degraded = scheduled.degraded;
          response.starts_used = scheduled.starts_used;
          response.cut_weight = scheduled.metrics.cut_weight;
          response.cut_edges = scheduled.metrics.cut_edges;
          response.sides = std::move(scheduled.sides);
        }
      } catch (const std::exception& error) {
        // Bad netlists (and any other typed failure) stay request-local.
        response.status = "error";
        response.error = error.what();
        FHP_COUNTER_ADD("serve/errors", 1);
      }
      response.latency_us = now_us() - start;
      break;
    }
  }
  return response;
}

void Server::serve_connection(int fd) {
  bool trigger_shutdown = false;
  try {
    while (true) {
      std::optional<std::string> payload = read_frame(fd, options_.limits);
      if (!payload.has_value()) break;  // clean EOF
      Response response;
      bool is_shutdown = false;
      try {
        const Request request = parse_request(*payload);
        is_shutdown = request.op == Request::Op::kShutdown;
        response = handle(request);
      } catch (const ProtocolError& error) {
        // The frame was well-formed but the payload was not a valid
        // request: answer typed and keep the connection.
        response.status = "error";
        response.error = error.what();
        FHP_COUNTER_ADD("serve/bad_requests", 1);
      }
      write_frame(fd, to_json(response), options_.limits);
      if (is_shutdown) {
        trigger_shutdown = true;
        break;
      }
    }
  } catch (const ProtocolError&) {
    // Framing violation (hostile length, truncation) or a dead peer: the
    // stream cannot be resynchronized, so drop this connection.
    FHP_COUNTER_ADD("serve/dropped_connections", 1);
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::erase(impl_->connection_fds, fd);
  }
  if (trigger_shutdown) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
    impl_->shutdown_cv.notify_all();
  }
}

}  // namespace fhp::serve

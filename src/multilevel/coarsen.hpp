/// \file coarsen.hpp
/// Clustering-based hypergraph coarsener — the first phase of the
/// multilevel V-cycle (docs/multilevel.md).
///
/// Each level rates, for every vertex, its most attractive neighbor by the
/// heavy-edge score sum(w(e) / (|e| - 1)) over shared nets (nets above
/// `rating_net_cap` pins are ignored — they carry no locality signal),
/// then agglomerates vertices onto their preferred partners subject to a
/// cluster-weight cap, and contracts the result (hypergraph/contract.hpp).
///
/// Determinism contract (the PR 2 discipline): the rating loop is a pure
/// per-vertex function of the hypergraph, parallelized over vertices via
/// ThreadPool::parallel_for with per-lane scratch, so preferences are
/// bit-identical at any lane count; ties break toward the smaller
/// *original* fine-vertex id (the `tie_rank` threaded through the level
/// stack), never toward coarse ids whose numbering is a contraction
/// artifact. The agglomeration pass is a serial O(n) sweep in vertex-id
/// order over those preferences. The full hierarchy is therefore
/// bit-identical at any thread count — asserted by bench_multilevel and
/// tests/test_multilevel_engine.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "multilevel/hierarchy.hpp"
#include "util/parallel.hpp"

namespace fhp::ml {

/// Tuning knobs of the coarsening phase.
struct CoarseningOptions {
  /// Stop coarsening once at most this many vertices remain.
  VertexId coarsest_size = 120;
  /// Relative floor on the coarsest size: the effective stop target is
  /// max(coarsest_size, coarsest_fraction * finest n). The default (1/3)
  /// keeps the hierarchy shallow, which measurably preserves quality:
  /// Algorithm I keeps a near-global view of the instance at the coarsest
  /// level, while deep hierarchies hand it a mangled graph whose damage
  /// per-level refinement cannot repair (bench_multilevel;
  /// docs/multilevel.md). 0 = absolute coarsest_size only, for deep
  /// V-cycles (the mini baseline's configuration).
  double coarsest_fraction = 1.0 / 3.0;
  /// Stop when a level shrinks by less than this factor (cluster count >
  /// min_shrink * n means the clustering stalled, e.g. star netlists).
  double min_shrink = 0.95;
  /// Nets with more pins than this are ignored while rating merges; 0
  /// disables the cap. Large nets connect everything to everything and
  /// would drown the locality signal of small nets.
  std::uint32_t rating_net_cap = 16;
  /// Cluster-weight cap as a fraction of the total vertex weight (the cap
  /// is max(heaviest vertex, fraction * total + 1, total / coarsest_size
  /// + 1) — a legal merge always exists and the cap never makes the
  /// coarsening target unreachable). Prevents one snowballing cluster
  /// from absorbing the instance and leaving the initial partitioner
  /// nothing to balance.
  double cluster_weight_fraction = 1.0 / 32.0;
  /// Hard depth bound on the hierarchy.
  int max_levels = 64;
};

/// One level of clustering: fine vertex -> dense cluster id.
struct ClusteringResult {
  std::vector<VertexId> cluster;  ///< one id in [0, num_clusters) per vertex
  VertexId num_clusters = 0;
};

/// Computes one level of heavy-edge clustering on \p h. \p tie_rank gives
/// each vertex its rank in original-id space (pass an empty span at the
/// finest level for the identity); preferences tie-break toward the
/// smaller rank. \p pool parallelizes the rating loop (null = serial);
/// the result is bit-identical at any lane count.
[[nodiscard]] ClusteringResult heavy_edge_clustering(
    const Hypergraph& h, std::span<const VertexId> tie_rank,
    const CoarseningOptions& options, ThreadPool* pool = nullptr);

/// Runs the full coarsening phase: clustering + contraction per level
/// until \p options.coarsest_size is reached, the clustering stalls, or
/// \p options.max_levels is hit. Instrumented with the ml/coarsen_us
/// histogram (one sample per level) and the ml/coarsen span.
[[nodiscard]] Hierarchy build_hierarchy(const Hypergraph& h,
                                        const CoarseningOptions& options,
                                        ThreadPool* pool = nullptr);

}  // namespace fhp::ml

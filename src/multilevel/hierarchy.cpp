#include "multilevel/hierarchy.hpp"

#include <utility>

namespace fhp::ml {

void Hierarchy::push(Level level) {
  FHP_REQUIRE(level.cluster.size() ==
                  (levels_.empty() ? finest_->num_vertices()
                                   : levels_.back().coarse.num_vertices()),
              "level cluster map must cover the previous level's vertices");
  FHP_REQUIRE(level.coarse.num_vertices() >= 1,
              "coarse hypergraph must be non-empty");
  if (levels_.empty()) {
    side_buffer_[0].reserve(finest_->num_vertices());
    side_buffer_[1].reserve(finest_->num_vertices());
  }
  levels_.push_back(std::move(level));
}

std::span<const std::uint8_t> Hierarchy::project(
    std::size_t i, std::span<const std::uint8_t> coarse_sides) {
  FHP_REQUIRE(i < levels_.size(), "level index out of range");
  const Level& lvl = levels_[i];
  FHP_REQUIRE(coarse_sides.size() == lvl.coarse.num_vertices(),
              "one coarse side per coarse vertex expected");
  // Pick the buffer the input does not alias (callers chain projections,
  // so `coarse_sides` is typically the other buffer's previous contents).
  std::vector<std::uint8_t>& out =
      coarse_sides.data() == side_buffer_[0].data() ? side_buffer_[1]
                                                    : side_buffer_[0];
  // resize() within the reserved finest-size capacity never reallocates.
  out.resize(lvl.cluster.size());
  for (std::size_t v = 0; v < lvl.cluster.size(); ++v) {
    FHP_DEBUG_ASSERT(lvl.cluster[v] < coarse_sides.size(),
                     "cluster id outside the coarse partition");
    out[v] = coarse_sides[lvl.cluster[v]];
  }
  return {out.data(), out.size()};
}

}  // namespace fhp::ml

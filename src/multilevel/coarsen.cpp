#include "multilevel/coarsen.hpp"

#include <algorithm>
#include <utility>

#include "hypergraph/contract.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace fhp::ml {

namespace {

/// Per-lane rating scratch: a dense score accumulator plus the list of
/// slots touched for the current vertex (cleared between vertices, so the
/// accumulator is reusable without an O(n) wipe).
struct LaneScratch {
  std::vector<double> rating;
  std::vector<VertexId> touched;
};

}  // namespace

ClusteringResult heavy_edge_clustering(const Hypergraph& h,
                                       std::span<const VertexId> tie_rank,
                                       const CoarseningOptions& options,
                                       ThreadPool* pool) {
  const VertexId n = h.num_vertices();
  FHP_REQUIRE(tie_rank.empty() || tie_rank.size() == n,
              "tie_rank must be empty or cover every vertex");

  Weight max_vertex = 1;
  for (VertexId v = 0; v < n; ++v) {
    max_vertex = std::max(max_vertex, h.vertex_weight(v));
  }
  // The cap must never make the coarsening target unreachable: at least
  // total/coarsest_size weight per cluster is needed to shrink down to
  // coarsest_size clusters, whatever the fraction knob says.
  const Weight cluster_cap = std::max<Weight>(
      {max_vertex,
       static_cast<Weight>(static_cast<double>(h.total_vertex_weight()) *
                           options.cluster_weight_fraction) +
           1,
       h.total_vertex_weight() /
               std::max<Weight>(1, options.coarsest_size) +
           1});

  const auto rank_of = [&tie_rank](VertexId v) {
    return tie_rank.empty() ? v : tie_rank[v];
  };

  // ---- Rating phase (parallel): each vertex's preferred partner is a
  // pure function of the hypergraph, so the parallel map is bit-identical
  // at any lane count (chunk boundaries never influence the values).
  std::vector<VertexId> preference(n, kInvalidVertex);
  const int lanes = pool != nullptr ? pool->thread_count() : 1;
  std::vector<LaneScratch> scratch(static_cast<std::size_t>(lanes));

  const auto rate_range = [&](std::size_t begin, std::size_t end,
                              LaneScratch& s) {
    if (s.rating.size() < n) s.rating.assign(n, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<VertexId>(i);
      const Weight wv = h.vertex_weight(v);
      s.touched.clear();
      for (EdgeId e : h.nets_of(v)) {
        const Count size = h.edge_size(e);
        if (size < 2) continue;
        if (options.rating_net_cap > 0 && size > options.rating_net_cap) {
          continue;
        }
        const double score = static_cast<double>(h.edge_weight(e)) /
                             static_cast<double>(size - 1);
        for (VertexId u : h.pins(e)) {
          if (u == v) continue;
          if (h.vertex_weight(u) + wv > cluster_cap) continue;
          if (s.rating[u] == 0.0) s.touched.push_back(u);
          s.rating[u] += score;
        }
      }
      VertexId best = kInvalidVertex;
      double best_rating = 0.0;
      for (VertexId u : s.touched) {
        // Ties break toward the smaller original-id rank: coarse-vertex
        // numbering is a contraction artifact and must not leak into the
        // result (docs/multilevel.md).
        if (s.rating[u] > best_rating ||
            (s.rating[u] == best_rating && best != kInvalidVertex &&
             rank_of(u) < rank_of(best))) {
          best = u;
          best_rating = s.rating[u];
        }
      }
      for (VertexId u : s.touched) s.rating[u] = 0.0;
      preference[i] = best;
    }
  };
  // current_lane() indexes `scratch` only inside a region of this pool;
  // the serial path may execute on an outer pool's worker (whose lane id
  // is unrelated to this scratch vector), so it uses lane 0 explicitly.
  if (pool != nullptr && pool->thread_count() > 1 && n > 1) {
    pool->parallel_for(n, 128, [&](std::size_t begin, std::size_t end) {
      rate_range(begin, end,
                 scratch[static_cast<std::size_t>(
                     ThreadPool::current_lane())]);
    });
  } else {
    rate_range(0, n, scratch[0]);
  }

  // ---- Agglomeration phase (serial, O(n)): sweep vertices in id order,
  // joining each unassigned vertex to its preferred partner's cluster when
  // the weight cap admits. Cluster ids are dense, assigned in creation
  // order, so the whole map is deterministic given the preferences.
  ClusteringResult result;
  result.cluster.assign(n, kInvalidVertex);
  std::vector<Weight> cluster_weight;
  cluster_weight.reserve(n);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (result.cluster[v] != kInvalidVertex) continue;
    VertexId target = preference[v];
    if (target != kInvalidVertex &&
        result.cluster[target] != kInvalidVertex) {
      // Partner already clustered: join its cluster if the cap admits
      // (the cap was checked pairwise at rating time, but the cluster may
      // have grown since).
      const VertexId c = result.cluster[target];
      if (cluster_weight[c] + h.vertex_weight(v) <= cluster_cap) {
        result.cluster[v] = c;
        cluster_weight[c] += h.vertex_weight(v);
        continue;
      }
      target = kInvalidVertex;
    }
    if (target != kInvalidVertex &&
        h.vertex_weight(v) + h.vertex_weight(target) <= cluster_cap) {
      // Partner still unassigned (it has a larger id — smaller ids were
      // already swept): found a fresh pair cluster.
      result.cluster[v] = next;
      result.cluster[target] = next;
      cluster_weight.push_back(h.vertex_weight(v) +
                               h.vertex_weight(target));
    } else {
      result.cluster[v] = next;
      cluster_weight.push_back(h.vertex_weight(v));
    }
    ++next;
  }
  result.num_clusters = next;
  return result;
}

Hierarchy build_hierarchy(const Hypergraph& h,
                          const CoarseningOptions& options, ThreadPool* pool) {
  FHP_TRACE_SCOPE("ml_coarsen");
  FHP_REQUIRE(options.coarsest_size >= 2, "coarsest size must be >= 2");
  FHP_REQUIRE(options.max_levels >= 0, "max_levels must be >= 0");

  Hierarchy hierarchy(h);
  const auto target = std::max<VertexId>(
      options.coarsest_size,
      static_cast<VertexId>(options.coarsest_fraction *
                            static_cast<double>(h.num_vertices())));
  // Original-id rank per current-level vertex (empty = identity at the
  // finest level); recomputed per level as the member minimum so the
  // rating tie-break always compares in original-id space.
  std::vector<VertexId> rank;
  const Hypergraph* current = &h;
  while (current->num_vertices() > target &&
         static_cast<int>(hierarchy.num_levels()) < options.max_levels) {
    FHP_HIST_SCOPE_US("ml/coarsen_us");
    ClusteringResult clustering =
        heavy_edge_clustering(*current, rank, options, pool);
    if (static_cast<double>(clustering.num_clusters) >
        options.min_shrink * static_cast<double>(current->num_vertices())) {
      break;  // clustering stalled (e.g. star-shaped netlists)
    }
    std::vector<VertexId> next_rank(clustering.num_clusters, kInvalidVertex);
    for (VertexId v = 0; v < current->num_vertices(); ++v) {
      const VertexId r = rank.empty() ? v : rank[v];
      VertexId& slot = next_rank[clustering.cluster[v]];
      slot = std::min(slot, r);
    }
    ContractionResult contracted = contract(
        *current, std::move(clustering.cluster), clustering.num_clusters);
    hierarchy.push(
        {std::move(contracted.hypergraph), std::move(contracted.cluster)});
    rank = std::move(next_rank);
    current = &hierarchy.level(hierarchy.num_levels() - 1).coarse;
  }
  FHP_COUNTER_ADD("ml/levels",
                  static_cast<long long>(hierarchy.num_levels()));
  return hierarchy;
}

}  // namespace fhp::ml

#include "multilevel/flow_refine.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "core/recursive.hpp"
#include "graph/maxflow.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"

namespace fhp::ml {

namespace {

/// Cut weight of \p sides on \p h without building a Bipartition.
Weight cut_weight_of(const Hypergraph& h,
                     std::span<const std::uint8_t> sides) {
  Weight cut = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool on[2] = {false, false};
    for (VertexId v : h.pins(e)) {
      on[sides[v]] = true;
      if (on[0] && on[1]) {
        cut += h.edge_weight(e);
        break;
      }
    }
  }
  return cut;
}

/// Grows the round's corridor: every pin of every cut net is seeded
/// (keeping at least one exterior anchor per side so the gadget always
/// has both terminals), then a per-side BFS over the hypergraph
/// (module → nets → modules, staying on the module's own side) expands
/// the corridor breadth-first until the admitted vertex weight of that
/// side reaches \p budget. All traversal state lives in the workspace:
/// epoch-stamped vertex marks, per-side bits in the edge-mark stamps for
/// net dedup, and the two frontier buffers as BFS queues — zero
/// allocations once warm, same as the Algorithm I kernels.
///
/// Deterministic: seeds are collected in (net, pin) CSR order and the
/// expansion consumes each frontier in push order, so equal inputs grow
/// equal corridors at any thread count.
VertexId grow_corridor(const Hypergraph& h,
                       const std::vector<std::uint8_t>& sides, double budget,
                       Workspace& ws, std::vector<std::uint8_t>& in_corridor) {
  const VertexId n = h.num_vertices();
  in_corridor.assign(n, 0);
  VertexId exterior[2] = {0, 0};
  for (VertexId v = 0; v < n; ++v) ++exterior[sides[v]];

  ws.mark.reset(n, 0);
  ws.edge_mark.reset(h.num_edges(), 0);
  ws.reset_buffer(ws.frontier[0], n);
  ws.reset_buffer(ws.frontier[1], n);
  double admitted[2] = {0.0, 0.0};
  VertexId corridor = 0;

  const auto admit = [&](VertexId v, std::uint8_t s) {
    ws.mark.set(v, 1);
    in_corridor[v] = 1;
    ws.frontier[s].push_back(v);
    admitted[s] += static_cast<double>(h.vertex_weight(v));
    --exterior[s];
    ++corridor;
  };

  // Seeds: the cut-net boundary, admitted regardless of budget (the
  // gadget can only move what is in the corridor, and the boundary is
  // where improvement lives) — except the last exterior module of a
  // side, which stays out as that side's terminal anchor.
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const std::span<const VertexId> pins = h.pins(e);
    bool on[2] = {false, false};
    for (VertexId v : pins) {
      on[sides[v]] = true;
      if (on[0] && on[1]) break;
    }
    if (!(on[0] && on[1])) continue;
    for (VertexId v : pins) {
      const std::uint8_t s = sides[v];
      if (ws.mark.get(v) == 0 && exterior[s] > 1) admit(v, s);
    }
  }

  // Budgeted breadth-first expansion, one side at a time.
  for (int s = 0; s < 2; ++s) {
    const auto side = static_cast<std::uint8_t>(s);
    const std::uint64_t side_bit = std::uint64_t{1} << s;
    for (std::size_t pos = 0;
         pos < ws.frontier[s].size() && admitted[s] < budget &&
         exterior[s] > 1;
         ++pos) {
      const VertexId v = ws.frontier[s][pos];
      for (EdgeId e : h.nets_of(v)) {
        if ((ws.edge_mark.get(e) & side_bit) != 0) continue;
        ws.edge_mark.set(e, ws.edge_mark.get(e) | side_bit);
        for (VertexId u : h.pins(e)) {
          if (sides[u] != side || ws.mark.get(u) != 0) continue;
          if (admitted[s] >= budget || exterior[s] <= 1) break;
          admit(u, side);
        }
        if (admitted[s] >= budget || exterior[s] <= 1) break;
      }
    }
  }
  return corridor;
}

}  // namespace

CorridorSolve solve_corridor(const Hypergraph& h,
                             const std::vector<std::uint8_t>& sides,
                             const std::vector<std::uint8_t>& in_corridor) {
  FHP_REQUIRE(sides.size() == h.num_vertices(), "one side per module");
  FHP_REQUIRE(in_corridor.size() == h.num_vertices(),
              "one corridor flag per module");
  CorridorSolve result;
  result.sides = sides;

  const VertexId n = h.num_vertices();
  std::vector<Count> local(n, kInvalidVertex);
  Count movable = 0;
  VertexId exterior[2] = {0, 0};
  for (VertexId v = 0; v < n; ++v) {
    if (in_corridor[v] != 0) {
      local[v] = movable++;
    } else {
      ++exterior[sides[v]];
    }
  }
  // Both terminals need a contracted module behind them; otherwise the
  // min cut could legally empty a side, which is never adoptable.
  if (movable == 0 || exterior[0] == 0 || exterior[1] == 0) return result;

  // Only nets touching the corridor can change cut status; everything
  // else is constant and stays out of the gadget.
  std::vector<EdgeId> relevant;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    for (VertexId v : h.pins(e)) {
      if (in_corridor[v] != 0) {
        relevant.push_back(e);
        break;
      }
    }
  }
  if (relevant.empty()) return result;

  // Gadget sizing in 64-bit so an inadmissible node count fails typed
  // instead of wrapping before FlowNetwork's own admission check.
  const std::uint64_t nodes64 =
      static_cast<std::uint64_t>(movable) +
      2 * static_cast<std::uint64_t>(relevant.size()) + 2;
  FHP_REQUIRE(nodes64 <= kMaxIndexCount,
              "flow gadget node count exceeds the index range");

  // Capacity-overflow guard: the flow value is bounded by the summed
  // relevant-net weight, which must stay strictly below the uncuttable
  // arc capacity for the gadget's arithmetic to be exact. Weight regimes
  // near the int64 ceiling (contract-test territory) land here.
  Weight weight_sum = 0;
  for (const EdgeId e : relevant) {
    const Weight w = h.edge_weight(e);
    FHP_REQUIRE(w < FlowNetwork::kInfiniteCapacity - weight_sum,
                "flow gadget capacity overflow: summed net weight reaches "
                "the uncuttable-arc capacity");
    weight_sum += w;
  }

  const auto super_s =
      static_cast<Count>(movable + 2 * static_cast<Count>(relevant.size()));
  const Count super_t = super_s + 1;
  FlowNetwork net(super_t + 1);

  // The Lawler hyperedge gadget: net e becomes in→out with capacity
  // edge_weight(e); every pin is wired to both split nodes with
  // uncuttable arcs. Corridor pins connect through their local node,
  // exterior pins through the super terminal of their current side (one
  // arc pair per terminal per net — further exterior pins on the same
  // side are redundant).
  for (std::size_t j = 0; j < relevant.size(); ++j) {
    const EdgeId e = relevant[j];
    const auto in = static_cast<Count>(movable + 2 * j);
    const Count out = in + 1;
    net.add_arc(in, out, h.edge_weight(e));
    bool wired[2] = {false, false};
    for (VertexId v : h.pins(e)) {
      Count node;
      if (in_corridor[v] != 0) {
        node = local[v];
      } else {
        const std::uint8_t s = sides[v];
        if (wired[s]) continue;
        wired[s] = true;
        node = s == 0 ? super_s : super_t;
      }
      net.add_arc(node, in, FlowNetwork::kInfiniteCapacity);
      net.add_arc(out, node, FlowNetwork::kInfiniteCapacity);
    }
  }

  result.flow_value = net.max_flow(super_s, super_t);
  result.gadget_arcs = net.num_arcs();
  const std::vector<std::uint8_t> reach = net.min_cut_side();
  for (VertexId v = 0; v < n; ++v) {
    if (in_corridor[v] != 0) result.sides[v] = reach[local[v]] != 0 ? 0 : 1;
  }
  result.cut_weight = cut_weight_of(h, result.sides);
  result.solved = true;
  return result;
}

Weight FlowRefiner::refine(const Hypergraph& h,
                           std::vector<std::uint8_t>& sides,
                           std::uint64_t /*seed: the refiner is fully
                           deterministic — corridor growth, gadget build
                           and Dinic all iterate in fixed CSR order*/) {
  FHP_TRACE_SCOPE("flow_refine");
  if (h.num_vertices() < options_.min_vertices || h.num_edges() == 0 ||
      options_.max_rounds <= 0) {
    return 0;
  }
  const Weight before = cut_weight_of(h, sides);
  if (before == 0) return 0;

  const Weight total = h.total_vertex_weight();
  const auto imbalance_of = [&](const std::vector<std::uint8_t>& s) {
    Weight w0 = 0;
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (s[v] == 0) w0 += h.vertex_weight(v);
    }
    const Weight w1 = total - w0;
    return w0 > w1 ? w0 - w1 : w1 - w0;
  };
  // A candidate must land within the tolerance band — or at least not be
  // more lopsided than the partition we were handed (projected coarse
  // partitions can start outside the band; flow must stay adoptable).
  // The floor of 2 matches what balance recovery can actually reach:
  // rebalance_bipartition guarantees |dev0| <= max(1, eps/2 * total), so
  // the recovered imbalance is <= max(2, eps * total) — without the floor
  // no candidate could ever be adopted on small unit-weight instances.
  const auto tol_abs = static_cast<Weight>(options_.balance_tolerance *
                                           static_cast<double>(total));
  const Weight allowed =
      std::max({Weight{2}, tol_abs, imbalance_of(sides)});

  double budget = std::max(
      1.0, options_.corridor_weight_fraction * static_cast<double>(total));
  Weight current = before;
  std::vector<std::uint8_t> in_corridor;
  int dry = 0;
  for (int round = 0;
       round < options_.max_rounds && dry < options_.max_dry_rounds;
       ++round) {
    FHP_COUNTER_ADD("flow/rounds", 1);
    const VertexId corridor = grow_corridor(h, sides, budget, ws_,
                                            in_corridor);
    FHP_COUNTER_ADD("flow/corridor_vertices",
                    static_cast<long long>(corridor));
    // Anchors are all that can remain exterior once the corridor covers
    // everything else; a dry round at saturation cannot be outgrown.
    const bool saturated = corridor + 2 >= h.num_vertices();

    bool adopted = false;
    if (corridor > 0) {
      CorridorSolve solve = solve_corridor(h, sides, in_corridor);
      FHP_COUNTER_ADD("flow/gadget_arcs",
                      static_cast<long long>(solve.gadget_arcs));
      if (solve.solved && solve.cut_weight < current) {
        if (imbalance_of(solve.sides) <= allowed) {
          adopted = true;
        } else {
          // Balance recovery: the exact min cut is often lopsided. Let
          // the greedy rebalancer walk it back toward an even split and
          // adopt only if the result is still a strict cut improvement
          // inside the allowance.
          Bipartition p(h, std::move(solve.sides));
          // Halved tolerance (the recursive driver's convention): the
          // rebalancer bounds the *deviation* while the allowance bounds
          // the *imbalance* = 2 x deviation.
          rebalance_bipartition(p, 0.5, options_.balance_tolerance / 2.0);
          solve.sides = p.sides();
          solve.cut_weight = p.cut_weight();
          adopted = solve.cut_weight < current &&
                    p.weight_imbalance() <= allowed;
        }
      }
      if (adopted) {
        sides = std::move(solve.sides);
        current = solve.cut_weight;
        FHP_COUNTER_ADD("flow/adopted", 1);
      }
    }

    if (adopted) {
      dry = 0;
      if (current == 0) break;
    } else {
      ++dry;
      if (saturated) break;
    }
    budget *= options_.budget_growth;
  }
  return before - current;
}

const char* to_string(RefinerChoice choice) noexcept {
  switch (choice) {
    case RefinerChoice::kFm:
      return "fm";
    case RefinerChoice::kFlow:
      return "flow";
    case RefinerChoice::kFlowFm:
      return "flow+fm";
  }
  return "unknown";
}

std::unique_ptr<Refiner> make_refiner(RefinerChoice choice,
                                      const FmRefinerOptions& fm_options,
                                      const FlowRefinerOptions& flow_options) {
  switch (choice) {
    case RefinerChoice::kFlow:
      return std::make_unique<FlowRefiner>(flow_options);
    case RefinerChoice::kFlowFm:
      return std::make_unique<FlowFmRefiner>(flow_options, fm_options);
    case RefinerChoice::kFm:
      break;
  }
  return std::make_unique<FmRefiner>(fm_options);
}

}  // namespace fhp::ml

#include "multilevel/refine.hpp"

#include <span>
#include <utility>

#include "baselines/fm.hpp"

namespace fhp::ml {

namespace {

/// Cut weight of \p sides on \p h, computed without building a
/// Bipartition (no allocation beyond the caller's vectors).
Weight cut_weight_of(const Hypergraph& h, std::span<const std::uint8_t> sides) {
  Weight cut = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    bool on[2] = {false, false};
    for (VertexId v : h.pins(e)) {
      on[sides[v]] = true;
      if (on[0] && on[1]) {
        cut += h.edge_weight(e);
        break;
      }
    }
  }
  return cut;
}

}  // namespace

/// Marks the cut frontier free (0) and the interior fixed (1): every pin
/// of every cut net, expanded by one hop (all pins sharing a net with a
/// frontier pin) so FM has room for the short excursions its best-prefix
/// rollback thrives on. Returns false when no net is cut.
bool boundary_mask(const Hypergraph& h, std::span<const std::uint8_t> sides,
                   std::vector<std::uint8_t>& fixed,
                   std::vector<VertexId>& frontier) {
  fixed.assign(h.num_vertices(), 1);
  frontier.clear();
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const std::span<const VertexId> pins = h.pins(e);
    bool on[2] = {false, false};
    for (VertexId v : pins) {
      on[sides[v]] = true;
      if (on[0] && on[1]) break;
    }
    if (on[0] && on[1]) {
      for (VertexId v : pins) {
        if (fixed[v]) {
          fixed[v] = 0;
          frontier.push_back(v);
        }
      }
    }
  }
  if (frontier.empty()) return false;
  for (const VertexId v : frontier) {
    for (EdgeId e : h.nets_of(v)) {
      for (VertexId u : h.pins(e)) fixed[u] = 0;
    }
  }
  return true;
}

Weight FmRefiner::refine(const Hypergraph& h,
                         std::vector<std::uint8_t>& sides,
                         std::uint64_t seed) {
  if (h.num_vertices() < 2 || options_.max_passes <= 0) return 0;
  const Weight before = cut_weight_of(h, sides);

  if (!options_.boundary_only ||
      h.num_vertices() <= options_.full_fm_threshold) {
    FmOptions fm;
    fm.seed = seed;
    fm.max_passes = options_.max_passes;
    fm.max_weight_imbalance = options_.max_weight_imbalance;
    fm.initial = sides;
    BaselineResult result = fiduccia_mattheyses(h, fm);
    // FM's per-pass rollback keeps the best prefix (including the empty
    // one), so the result is never worse; the guard is belt and braces.
    if (result.metrics.cut_weight > before) return 0;
    sides = std::move(result.sides);
    return before - result.metrics.cut_weight;
  }

  // Boundary mode: each pass runs FM with every vertex off the cut
  // frontier locked via FmOptions::fixed, then recomputes the frontier —
  // moves shift the boundary, so the candidate set grows pass over pass
  // the way classic boundary FM's gain updates would admit new cells.
  // Pass cost is O(pins + boundary * degree) instead of O(n * degree):
  // on a projected partition the cut is already small, so this is what
  // makes per-level refinement cheaper than one flat run on the finest
  // level (bench_multilevel).
  Weight current = before;
  std::vector<std::uint8_t> fixed;
  std::vector<VertexId> frontier;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    if (!boundary_mask(h, sides, fixed, frontier)) break;
    FmOptions fm;
    fm.seed = seed + static_cast<std::uint64_t>(pass);
    fm.max_passes = options_.max_passes;
    fm.max_weight_imbalance = options_.max_weight_imbalance;
    fm.initial = sides;
    fm.fixed = fixed;
    BaselineResult result = fiduccia_mattheyses(h, fm);
    if (result.metrics.cut_weight >= current) break;  // frontier converged
    current = result.metrics.cut_weight;
    sides = std::move(result.sides);
  }
  return before - current;
}

}  // namespace fhp::ml

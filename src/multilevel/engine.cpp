#include "multilevel/engine.hpp"

#include <memory>
#include <utility>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp::ml {

MultilevelResult multilevel_partition(const Hypergraph& h,
                                      const EngineOptions& options,
                                      Refiner& refiner) {
  FHP_TRACE_SCOPE("multilevel_engine");
  FHP_COUNTER_ADD("ml/runs", 1);
  FHP_REQUIRE(h.num_vertices() >= 2, "need at least two modules");

  const int lanes = resolve_threads(options.threads);
  std::unique_ptr<ThreadPool> pool;
  if (lanes > 1) pool = std::make_unique<ThreadPool>(lanes);

  // ---- Coarsening: build the hierarchy (parallel rating, serial
  // agglomeration; bit-identical at any lane count).
  Hierarchy hierarchy = build_hierarchy(h, options.coarsening, pool.get());
  const Hypergraph& coarsest = hierarchy.coarsest();

  MultilevelResult result;
  result.levels = static_cast<int>(hierarchy.num_levels());
  result.coarsest_vertices = coarsest.num_vertices();

  // ---- Initial partition: Algorithm I at the coarsest level, with every
  // existing option (multi-start, memoized, reordered) in play.
  std::vector<std::uint8_t> sides;
  {
    FHP_TRACE_SCOPE("ml_initial");
    Algorithm1Options initial = options.initial;
    initial.seed = options.seed;
    initial.threads = options.threads;
    initial.collect_trace = false;
    Algorithm1Result coarse = algorithm1(coarsest, initial);
    result.initial_cut_weight = coarse.metrics.cut_weight;
    sides = std::move(coarse.sides);
  }

  // ---- Uncoarsening: project level by level (allocation-free via the
  // hierarchy's reserved buffers) and refine each level in place. The
  // coarsest level is refined too — Algorithm I optimizes cutsize, FM can
  // still trade imbalance for cut within tolerance.
  {
    FHP_TRACE_SCOPE("ml_uncoarsen");
    // One reservation up front: the per-level assign() below then stays
    // within capacity, so the walk up the hierarchy never reallocates.
    sides.reserve(h.num_vertices());
    const Rng master(options.seed);
    const std::size_t levels = hierarchy.num_levels();
    result.refine_improvement +=
        refiner.refine(coarsest, sides, master.fork(levels)());
    for (std::size_t i = levels; i-- > 0;) {
      const std::span<const std::uint8_t> projected =
          hierarchy.project(i, sides);
      sides.assign(projected.begin(), projected.end());
      result.refine_improvement +=
          refiner.refine(hierarchy.input_of(i), sides, master.fork(i)());
    }
  }
  FHP_COUNTER_ADD("ml/refine_improvement",
                  static_cast<long long>(result.refine_improvement));

  result.sides = std::move(sides);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  return result;
}

MultilevelResult multilevel_partition(const Hypergraph& h,
                                      const EngineOptions& options) {
  const std::unique_ptr<Refiner> refiner =
      make_refiner(options.refiner, options.refine, options.flow_refine);
  return multilevel_partition(h, options, *refiner);
}

const char* to_string(EngineChoice choice) noexcept {
  switch (choice) {
    case EngineChoice::kFlat:
      return "flat";
    case EngineChoice::kMultilevel:
      return "multilevel";
    case EngineChoice::kAuto:
      return "auto";
  }
  return "unknown";
}

EngineResult partition_auto(const Hypergraph& h, const PartitionPlan& plan) {
  const bool use_multilevel =
      plan.engine == EngineChoice::kMultilevel ||
      (plan.engine == EngineChoice::kAuto &&
       h.num_vertices() >= plan.multilevel_threshold);
  FHP_GAUGE_SET("engine/multilevel", use_multilevel ? 1.0 : 0.0);
  EngineResult result;
  if (!use_multilevel) {
    Algorithm1Result flat = algorithm1(h, plan.algorithm1);
    result.sides = std::move(flat.sides);
    result.metrics = flat.metrics;
    result.engine_used = EngineChoice::kFlat;
    if (plan.refiner != RefinerChoice::kFm && h.num_vertices() >= 2) {
      // Flat-path flow post-pass: one corridor-flow refinement over the
      // Algorithm I result (plus FM polish under flow+fm) — the cheap way
      // to buy flow quality without the V-cycle.
      FHP_HIST_SCOPE_US("alg1/flow_refine_us");
      const std::unique_ptr<Refiner> post =
          make_refiner(plan.refiner, plan.refine, plan.flow_refine);
      if (post->refine(h, result.sides, plan.algorithm1.seed) > 0) {
        result.metrics = compute_metrics(Bipartition(h, result.sides));
      }
    }
    return result;
  }
  EngineOptions options;
  options.coarsening = plan.coarsening;
  options.initial = plan.algorithm1;
  options.initial.num_starts = plan.coarse_num_starts;
  options.refine = plan.refine;
  options.refiner = plan.refiner;
  options.flow_refine = plan.flow_refine;
  options.seed = plan.algorithm1.seed;
  options.threads = plan.algorithm1.threads;
  MultilevelResult ml = multilevel_partition(h, options);
  result.sides = std::move(ml.sides);
  result.metrics = ml.metrics;
  result.engine_used = EngineChoice::kMultilevel;
  result.levels = ml.levels;
  FHP_GAUGE_SET("engine/levels", static_cast<double>(ml.levels));
  return result;
}

}  // namespace fhp::ml

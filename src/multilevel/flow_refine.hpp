/// \file flow_refine.hpp
/// Flow-based corridor refinement: the premium Refiner of the multilevel
/// engine (docs/multilevel.md, "Corridor flow refinement").
///
/// The recipe follows the network-flow refinement family (Heuer, Sanders
/// & Schlag; Gottesbüren & Hamann, PAPERS.md): around an existing cut,
/// grow a BFS *corridor* of bounded vertex weight on each side, build the
/// standard Lawler hyperedge gadget over the corridor with every
/// corridor-external module contracted into a super-source/super-sink,
/// solve the min s-t cut exactly (graph/maxflow.hpp, Dinic), and adopt
/// the induced reassignment only when it lowers the cut weight while
/// keeping the weight balance within tolerance (piggybacking on
/// rebalance_bipartition for recovery when the flow solution is
/// lopsided). Rounds repeat with an adaptive corridor budget — doubled
/// after every round, improvement counter reset on adoption — until two
/// consecutive rounds go dry or the corridor saturates.
///
/// Unlike FM, one flow solve optimizes the whole corridor globally, so it
/// escapes the move-at-a-time local minima FM sticks in; the corridor
/// bound keeps each solve far cheaper than a whole-instance flow
/// bipartition (baselines/flow.hpp). The refiner is deterministic — the
/// corridor BFS, gadget construction and Dinic all iterate in fixed CSR
/// order — so the engine's bit-identity contract across thread counts and
/// option toggles is preserved (the Refiner seed is accepted and unused).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "multilevel/refine.hpp"
#include "util/ids.hpp"
#include "util/workspace.hpp"

namespace fhp::ml {

/// Knobs of the corridor flow refiner.
struct FlowRefinerOptions {
  /// Starting corridor budget per side, as a fraction of the instance's
  /// total vertex weight. The cut-net boundary itself is always admitted
  /// (minus one anchor per side); the budget bounds the BFS expansion.
  double corridor_weight_fraction = 0.05;
  /// Budget multiplier applied after every round ("double on
  /// improvement" — and on dry rounds too, so the second dry attempt sees
  /// a strictly larger corridor instead of replaying the first).
  double budget_growth = 2.0;
  /// Hard cap on flow rounds per refine() call.
  int max_rounds = 8;
  /// Consecutive unadopted rounds before giving up.
  int max_dry_rounds = 2;
  /// Weight-balance tolerance: a candidate is adoptable when
  /// |w(V0) - w(V1)| <= max(2, tolerance * total weight), or no worse
  /// than the imbalance the input partition already had. (The floor of 2
  /// weight units is what balance recovery can guarantee on unit-weight
  /// instances — rebalance_bipartition bounds the *deviation* to >= 1.)
  double balance_tolerance = 0.10;
  /// Instances below this vertex count are skipped (FM already solves
  /// them exhaustively; a corridor cannot leave anchors on both sides).
  VertexId min_vertices = 4;
};

/// One gadget solve over a fixed corridor. Exposed for tests and benches;
/// refine() drives it with adaptively grown corridors.
struct CorridorSolve {
  /// Candidate assignment: corridor modules re-assigned by the min cut,
  /// exterior modules unchanged.
  std::vector<std::uint8_t> sides;
  /// Cut weight of the candidate on the whole hypergraph.
  Weight cut_weight = 0;
  /// The gadget's max-flow value == min-cut weight over the nets touching
  /// the corridor (fully-exterior nets are constant and excluded).
  Weight flow_value = 0;
  /// Directed arcs the gadget needed (diagnostics: flow/gadget_arcs).
  Count gadget_arcs = 0;
  /// False when the solve was degenerate (no cut net touching the
  /// corridor, or a side without an exterior anchor); `sides` is then the
  /// unchanged input.
  bool solved = false;
};

/// Builds the Lawler gadget over \p in_corridor (1 = movable) with
/// exterior modules contracted into super terminals by their current side
/// and solves it exactly. Preconditions (typed PreconditionError):
/// corridor node/arc counts must fit the build's index range, and the
/// summed weight of the nets in the gadget must stay below
/// FlowNetwork::kInfiniteCapacity — weight regimes near the int64 ceiling
/// fail typed instead of silently saturating past the uncuttable-arc
/// capacity. Requires at least one exterior module on each side (returns
/// solved = false otherwise, never an improper candidate).
[[nodiscard]] CorridorSolve solve_corridor(
    const Hypergraph& h, const std::vector<std::uint8_t>& sides,
    const std::vector<std::uint8_t>& in_corridor);

/// Flow-based corridor refinement behind the engine's Refiner seat.
class FlowRefiner final : public Refiner {
 public:
  explicit FlowRefiner(const FlowRefinerOptions& options = {})
      : options_(options) {}

  [[nodiscard]] Weight refine(const Hypergraph& h,
                              std::vector<std::uint8_t>& sides,
                              std::uint64_t seed) override;
  [[nodiscard]] const char* name() const noexcept override { return "flow"; }

 private:
  FlowRefinerOptions options_;
  /// Corridor-BFS scratch (epoch-stamped marks + frontier buffers), grown
  /// once and reused across levels/rounds — same per-lane reuse contract
  /// as the Algorithm I kernels (util/workspace.hpp).
  Workspace ws_;
};

/// "flow+fm": one corridor-flow pass then FM polish per level. Flow
/// repairs the global mistakes FM cannot see; FM then cleans up the
/// single-vertex moves a corridor boundary leaves behind. This is the
/// premium engine configuration (bench_flow_refine).
class FlowFmRefiner final : public Refiner {
 public:
  FlowFmRefiner(const FlowRefinerOptions& flow_options = {},
                const FmRefinerOptions& fm_options = {})
      : flow_(flow_options), fm_(fm_options) {}

  [[nodiscard]] Weight refine(const Hypergraph& h,
                              std::vector<std::uint8_t>& sides,
                              std::uint64_t seed) override {
    return flow_.refine(h, sides, seed) + fm_.refine(h, sides, seed);
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "flow+fm";
  }

 private:
  FlowRefiner flow_;
  FmRefiner fm_;
};

/// Which per-level refiner the engine runs.
enum class RefinerChoice {
  kFm,      ///< boundary FM (the fast default)
  kFlow,    ///< corridor flow only
  kFlowFm,  ///< corridor flow then FM polish (premium quality)
};

/// Stable name for reports/CLI ("fm" / "flow" / "flow+fm").
[[nodiscard]] const char* to_string(RefinerChoice choice) noexcept;

/// Instantiates the chosen refiner with the given knob sets.
[[nodiscard]] std::unique_ptr<Refiner> make_refiner(
    RefinerChoice choice, const FmRefinerOptions& fm_options = {},
    const FlowRefinerOptions& flow_options = {});

}  // namespace fhp::ml

/// \file refine.hpp
/// Per-level refinement interface of the uncoarsening phase.
///
/// The engine projects the coarse partition down one level and hands it to
/// a Refiner to improve in place. The interface is deliberately minimal so
/// alternative refiners (the flow-based corridor refiner on the roadmap)
/// slot in without touching the engine.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp::ml {

/// Improves a bipartition in place on one hierarchy level.
class Refiner {
 public:
  virtual ~Refiner() = default;

  /// Refines \p sides (one 0/1 entry per vertex of \p h) in place and
  /// returns the achieved cut-weight improvement (>= 0; never worsens the
  /// partition). \p seed is forked deterministically per level by the
  /// engine, so equal (instance, options, seed) runs are bit-identical.
  [[nodiscard]] virtual Weight refine(const Hypergraph& h,
                                      std::vector<std::uint8_t>& sides,
                                      std::uint64_t seed) = 0;

  /// Stable identifier for reports and traces.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Knobs of the default Fiduccia–Mattheyses refiner.
struct FmRefinerOptions {
  /// FM passes per level.
  int max_passes = 8;
  /// Weight-imbalance tolerance; 0 = the classic FM auto tolerance (the
  /// largest module weight, so some move is always legal).
  Weight max_weight_imbalance = 0;
  /// Restrict passes to the cut frontier (pins of cut nets plus one hop),
  /// locking the interior via FmOptions::fixed and recomputing the
  /// frontier between rounds. Drops per-pass cost from O(n * degree) to
  /// O(pins + frontier * degree). false = classic whole-instance FM
  /// passes at every level.
  bool boundary_only = true;
  /// Levels with at most this many vertices run classic full FM even in
  /// boundary mode. Projection carries the cut weight through unchanged,
  /// so deep refinement at the (cheap) coarse levels does the heavy
  /// lifting and the expensive fine levels only polish the frontier —
  /// the quality of full FM at a fraction of its cost
  /// (docs/multilevel.md, bench_multilevel).
  VertexId full_fm_threshold = 1024;
};

/// Fiduccia–Mattheyses per-level refinement (baselines/fm.hpp): seeds FM
/// with the projected partition and keeps the result only when it is no
/// worse than the input.
class FmRefiner final : public Refiner {
 public:
  explicit FmRefiner(const FmRefinerOptions& options = {})
      : options_(options) {}

  [[nodiscard]] Weight refine(const Hypergraph& h,
                              std::vector<std::uint8_t>& sides,
                              std::uint64_t seed) override;
  [[nodiscard]] const char* name() const noexcept override { return "fm"; }

 private:
  FmRefinerOptions options_;
};

}  // namespace fhp::ml

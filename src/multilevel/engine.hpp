/// \file engine.hpp
/// The multilevel V-cycle engine: parallel heavy-edge coarsening →
/// Algorithm I at the coarsest level → uncoarsening with per-level
/// refinement (docs/multilevel.md).
///
/// This is the quality-and-scale path for large instances: the coarsest
/// hypergraph is small enough that Algorithm I's multi-start pipeline
/// (with memoization and reordering) is essentially free, and every
/// uncoarsening level only pays a projection (O(n), allocation-free) plus
/// a few FM passes. partition_auto() routes instances between this engine
/// and flat Algorithm I by size.
///
/// Determinism contract: the coarsener's rating loop is a deterministic
/// parallel map, Algorithm I is bit-identical at any thread count (PR 2),
/// and refinement is serial and seeded — so the engine's partition is
/// bit-identical at any `threads` setting and across the reorder /
/// memoize_starts toggles of the initial partitioner (gated by
/// bench_multilevel and tests/test_multilevel_engine.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/algorithm1.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/flow_refine.hpp"
#include "multilevel/refine.hpp"
#include "partition/metrics.hpp"

namespace fhp::ml {

/// Coarse-level Algorithm I defaults: a reduced multi-start budget.
/// Memoization collapses distinct starts onto few pseudo-diameter pairs,
/// so past ~12 starts the coarse partition is bit-for-bit the same as at
/// 50 while costing nearly half the engine's wall time (bench_multilevel
/// measured identical cuts at 12/25/50 starts on every gated instance).
[[nodiscard]] inline Algorithm1Options default_initial_options() {
  Algorithm1Options options;
  options.num_starts = 12;
  return options;
}

/// Tuning knobs of the multilevel engine.
struct EngineOptions {
  /// Coarsening-phase knobs.
  CoarseningOptions coarsening;
  /// Coarsest-level initial partitioner: Algorithm I with all its
  /// existing options (multi-start budget, completion, memoization,
  /// reordering). Its `seed` and `threads` fields are overridden by the
  /// engine-level `seed` / `threads` below so one knob steers the run.
  Algorithm1Options initial = default_initial_options();
  /// Per-level FM refinement knobs (see FmRefiner).
  FmRefinerOptions refine;
  /// Which per-level refiner the default overload runs: boundary FM,
  /// corridor flow, or flow followed by FM polish (flow_refine.hpp).
  RefinerChoice refiner = RefinerChoice::kFm;
  /// Corridor-flow knobs (used when `refiner` involves flow).
  FlowRefinerOptions flow_refine;
  /// Master seed: the initial partitioner uses it directly; refinement
  /// seeds are forked per level (Rng::fork), so runs are reproducible.
  std::uint64_t seed = 1;
  /// Execution lanes for the coarsener's rating loop and the initial
  /// partitioner (1 = serial, 0 = FHP_THREADS). The partition is
  /// bit-identical at every setting.
  int threads = 0;
};

/// Output of the engine, with diagnostics for benches and the CLI.
struct MultilevelResult {
  std::vector<std::uint8_t> sides;  ///< side per module of the input
  PartitionMetrics metrics;         ///< scored on the original hypergraph
  int levels = 0;                   ///< hierarchy depth actually built
  VertexId coarsest_vertices = 0;   ///< vertex count Algorithm I saw
  Weight initial_cut_weight = 0;    ///< Algorithm I cut on the coarsest level
  Weight refine_improvement = 0;    ///< total cut weight removed by refinement
};

/// Runs the V-cycle with the refiner selected by options.refiner.
/// Requires >= 2 modules.
[[nodiscard]] MultilevelResult multilevel_partition(
    const Hypergraph& h, const EngineOptions& options = {});

/// Runs the V-cycle with a caller-supplied per-level refiner.
[[nodiscard]] MultilevelResult multilevel_partition(const Hypergraph& h,
                                                    const EngineOptions& options,
                                                    Refiner& refiner);

/// Which engine partitions an instance.
enum class EngineChoice {
  kFlat,        ///< flat Algorithm I on the whole hypergraph
  kMultilevel,  ///< the V-cycle engine
  kAuto,        ///< pick by instance size (multilevel_threshold)
};

/// Stable name for reports ("flat" / "multilevel" / "auto").
[[nodiscard]] const char* to_string(EngineChoice choice) noexcept;

/// Auto mode routes instances with at least this many modules to the
/// multilevel engine. Below it, flat Algorithm I is both faster and at
/// least as good (bench_multilevel; docs/multilevel.md discusses the
/// crossover).
inline constexpr VertexId kDefaultMultilevelThreshold = 2000;

/// One-stop partitioning request: engine selection plus the per-engine
/// configurations. `algorithm1` configures the flat path AND serves as
/// the coarsest-level initial partitioner of the multilevel path (its
/// seed/threads steer both engines).
struct PartitionPlan {
  EngineChoice engine = EngineChoice::kAuto;
  VertexId multilevel_threshold = kDefaultMultilevelThreshold;
  Algorithm1Options algorithm1;
  CoarseningOptions coarsening;
  FmRefinerOptions refine;
  /// Per-level refiner of the multilevel path. On the flat path any
  /// flow-involving choice adds one corridor-flow post-pass after
  /// Algorithm I (histogram alg1/flow_refine_us) — plus FM polish for
  /// kFlowFm — so `--refiner` upgrades both engines.
  RefinerChoice refiner = RefinerChoice::kFm;
  /// Corridor-flow knobs (used when `refiner` involves flow).
  FlowRefinerOptions flow_refine;
  /// Multi-start budget of the coarsest-level partitioner on the
  /// multilevel path (overrides algorithm1.num_starts there — see
  /// default_initial_options() for why 12 suffices). The flat path keeps
  /// algorithm1.num_starts untouched.
  int coarse_num_starts = 12;
};

/// Outcome of partition_auto(): the partition plus which engine ran.
struct EngineResult {
  std::vector<std::uint8_t> sides;
  PartitionMetrics metrics;
  EngineChoice engine_used = EngineChoice::kFlat;  ///< never kAuto
  int levels = 0;  ///< hierarchy depth (0 on the flat path)
};

/// The partition API: routes \p h to flat Algorithm I or the multilevel
/// engine per \p plan (kAuto picks by size), records the choice in the
/// obs layer (gauge engine/multilevel), and returns the partition with
/// the engine that produced it.
[[nodiscard]] EngineResult partition_auto(const Hypergraph& h,
                                          const PartitionPlan& plan = {});

}  // namespace fhp::ml

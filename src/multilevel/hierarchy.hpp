/// \file hierarchy.hpp
/// The contraction hierarchy of the multilevel V-cycle: per-level coarse
/// hypergraphs and contraction maps, plus the allocation-free projection
/// substrate the uncoarsening phase walks back up (docs/multilevel.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp::ml {

/// One coarsening level. `cluster` maps each vertex of the level's *input*
/// hypergraph (the original for level 0, the previous level's `coarse`
/// otherwise) to its coarse vertex in `coarse`.
struct Level {
  Hypergraph coarse;
  std::vector<VertexId> cluster;
};

/// An owning stack of coarsening levels over a finest hypergraph (held by
/// reference — it must outlive the hierarchy). Levels are memoized here
/// once at coarsening time; uncoarsening only reads them.
///
/// Projection discipline (PR 3): the hierarchy pre-reserves two side
/// buffers at the finest vertex count when the first level is pushed, so
/// walking a partition down the whole hierarchy via project() is O(n) per
/// level with zero allocations — no per-level churn no matter how deep
/// the V-cycle goes.
class Hierarchy {
 public:
  explicit Hierarchy(const Hypergraph& finest) : finest_(&finest) {}

  /// Number of coarsening levels (0 = no coarsening happened).
  [[nodiscard]] std::size_t num_levels() const noexcept {
    return levels_.size();
  }
  /// Level \p i (0 = finest contraction).
  [[nodiscard]] const Level& level(std::size_t i) const {
    FHP_DEBUG_ASSERT(i < levels_.size(), "level index out of range");
    return levels_[i];
  }
  /// The finest hypergraph the hierarchy was built over.
  [[nodiscard]] const Hypergraph& finest() const noexcept { return *finest_; }
  /// Input hypergraph of level \p i: the finest for i == 0, otherwise the
  /// previous level's coarse hypergraph.
  [[nodiscard]] const Hypergraph& input_of(std::size_t i) const {
    FHP_DEBUG_ASSERT(i < levels_.size(), "level index out of range");
    return i == 0 ? *finest_ : levels_[i - 1].coarse;
  }
  /// The coarsest hypergraph (the finest when no level was built).
  [[nodiscard]] const Hypergraph& coarsest() const noexcept {
    return levels_.empty() ? *finest_ : levels_.back().coarse;
  }

  /// Appends a level. First push reserves the projection buffers at the
  /// finest vertex count.
  void push(Level level);

  /// Projects \p coarse_sides (one entry per vertex of level \p i's
  /// coarse hypergraph) through level \p i's contraction map into the
  /// internal fine-side buffer and returns a view of it. O(n of the
  /// level's input), allocation-free after the first push. The returned
  /// span is invalidated by the next project() call.
  [[nodiscard]] std::span<const std::uint8_t> project(
      std::size_t i, std::span<const std::uint8_t> coarse_sides);

  /// Scratch bytes held by the projection buffers (for the obs layer).
  [[nodiscard]] std::size_t projection_bytes() const noexcept {
    return side_buffer_[0].capacity() + side_buffer_[1].capacity();
  }

 private:
  const Hypergraph* finest_;
  std::vector<Level> levels_;
  /// Double-buffered side storage: project() fills the buffer the input
  /// span does NOT alias, so callers can chain projections level by level.
  std::vector<std::uint8_t> side_buffer_[2];
};

}  // namespace fhp::ml

#include "gen/sharded.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// Draws the nets of chunk \p chunk_index into \p sink(pins). The chunk's
/// stream is forked from the master seed, so chunks can be (re)drawn in
/// any order — the two-pass writers below lean on exactly that to count
/// nets and pins before committing a header.
template <typename Sink>
void draw_chunk(const CircuitParams& params, std::uint64_t seed,
                std::uint64_t chunk_index, std::uint64_t net_count,
                std::vector<VertexId>& pins, Sink&& sink) {
  Rng rng = Rng(seed).fork(chunk_index);
  const auto n = static_cast<std::uint32_t>(params.num_modules);
  const auto window = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(static_cast<double>(n) *
                                    params.window_fraction));
  for (std::uint64_t i = 0; i < net_count; ++i) {
    pins.clear();
    if (rng.next_bool(params.bus_fraction)) {
      auto size = static_cast<std::uint32_t>(
          rng.next_in(params.bus_size_min, params.bus_size_max));
      size = std::min(size, n);
      for (std::uint32_t v : rng.sample_distinct(n, size)) {
        pins.push_back(static_cast<VertexId>(v));
      }
    } else {
      const auto extra = static_cast<std::uint32_t>(
          rng.next_geometric(params.size_geometric_p) - 1);
      const std::uint32_t size = std::min(params.max_net_size, 2 + extra);
      std::uint32_t span;
      if (rng.next_bool(params.locality)) {
        span = window;
      } else if (rng.next_bool(0.85)) {
        span = window * 4;
      } else {
        span = n;
      }
      span = std::min(span, n);
      const auto start =
          static_cast<std::uint32_t>(rng.next_below(n - span + 1));
      const std::uint32_t take = std::min(size, span);
      for (std::uint32_t offset : rng.sample_distinct(span, take)) {
        pins.push_back(static_cast<VertexId>(start + offset));
      }
    }
    if (pins.size() < 2) continue;  // mirror generate_circuit's drop rule
    sink(pins);
  }
}

/// Nets in chunk \p c when params.num_nets nets are cut into
/// \p nets_per_chunk-sized chunks.
std::uint64_t chunk_nets(std::uint64_t total, std::uint64_t per_chunk,
                         std::uint64_t c) {
  const std::uint64_t first = c * per_chunk;
  return std::min(per_chunk, total - first);
}

void check_params(const CircuitParams& params, std::uint64_t nets_per_chunk) {
  FHP_REQUIRE(params.num_modules >= 4, "need at least four modules");
  FHP_REQUIRE(static_cast<std::uint64_t>(params.num_modules) <
                  (std::uint64_t{1} << 32),
              "sharded generation samples 32-bit module ids");
  FHP_REQUIRE(params.size_geometric_p > 0.0 && params.size_geometric_p <= 1.0,
              "geometric parameter out of range");
  FHP_REQUIRE(params.max_net_size >= 2, "nets need at least two pins");
  FHP_REQUIRE(params.bus_size_max >= params.bus_size_min &&
                  params.bus_size_min >= 2,
              "bad bus size range");
  FHP_REQUIRE(params.weight_geometric_p == 0.0,
              "sharded writers emit unit module weights");
  FHP_REQUIRE(nets_per_chunk > 0, "nets_per_chunk must be positive");
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out.append(buf, ptr);
}

void flush_chunk(std::ofstream& out, std::string& buf, const char* path) {
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) throw IoError(std::string("write failed on '") + path + "'");
  buf.clear();
}

/// Pass 1 over every chunk: count emitted nets and pins without formatting
/// or I/O, so the headers can be written before the records.
ShardedNetlistStats census(const CircuitParams& params, std::uint64_t seed,
                           std::uint64_t nets_per_chunk) {
  ShardedNetlistStats stats;
  stats.num_modules = static_cast<std::uint64_t>(params.num_modules);
  const auto total = static_cast<std::uint64_t>(params.num_nets);
  stats.num_chunks = (total + nets_per_chunk - 1) / nets_per_chunk;
  std::vector<VertexId> pins;
  for (std::uint64_t c = 0; c < stats.num_chunks; ++c) {
    draw_chunk(params, seed, c, chunk_nets(total, nets_per_chunk, c), pins,
               [&](const std::vector<VertexId>& p) {
                 ++stats.num_nets;
                 stats.num_pins += p.size();
               });
  }
  return stats;
}

}  // namespace

ShardedNetlistStats write_sharded_hmetis(const std::string& path,
                                         const CircuitParams& params,
                                         std::uint64_t seed,
                                         std::uint64_t nets_per_chunk) {
  check_params(params, nets_per_chunk);
  const ShardedNetlistStats stats = census(params, seed, nets_per_chunk);

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  std::string buf;
  buf.reserve(std::size_t{1} << 20);
  append_u64(buf, stats.num_nets);
  buf.push_back(' ');
  append_u64(buf, stats.num_modules);
  buf.push_back('\n');

  const auto total = static_cast<std::uint64_t>(params.num_nets);
  std::vector<VertexId> pins;
  for (std::uint64_t c = 0; c < stats.num_chunks; ++c) {
    draw_chunk(params, seed, c, chunk_nets(total, nets_per_chunk, c), pins,
               [&](const std::vector<VertexId>& p) {
                 for (std::size_t i = 0; i < p.size(); ++i) {
                   if (i > 0) buf.push_back(' ');
                   append_u64(buf, static_cast<std::uint64_t>(p[i]) + 1);
                 }
                 buf.push_back('\n');
               });
    flush_chunk(out, buf, path.c_str());
  }
  out.flush();
  if (!out) throw IoError("write failed on '" + path + "'");
  return stats;
}

ShardedNetlistStats write_sharded_bookshelf(const std::string& nodes_path,
                                            const std::string& nets_path,
                                            const CircuitParams& params,
                                            std::uint64_t seed,
                                            std::uint64_t nets_per_chunk) {
  check_params(params, nets_per_chunk);
  const ShardedNetlistStats stats = census(params, seed, nets_per_chunk);

  // ---- .nodes: one unit-area record per module, streamed in blocks ----
  {
    std::ofstream out(nodes_path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + nodes_path + "' for writing");
    std::string buf;
    buf.reserve(std::size_t{1} << 20);
    buf += "UCLA nodes 1.0\n\nNumNodes : ";
    append_u64(buf, stats.num_modules);
    buf += "\nNumTerminals : 0\n";
    for (std::uint64_t v = 0; v < stats.num_modules; ++v) {
      buf += "  m";
      append_u64(buf, v);
      buf += " 1 1\n";
      if (buf.size() > (std::size_t{1} << 20) - 64) {
        flush_chunk(out, buf, nodes_path.c_str());
      }
    }
    flush_chunk(out, buf, nodes_path.c_str());
    out.flush();
    if (!out) throw IoError("write failed on '" + nodes_path + "'");
  }

  // ---- .nets: NetDegree + pin lines, chunk by chunk ----
  std::ofstream out(nets_path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + nets_path + "' for writing");
  std::string buf;
  buf.reserve(std::size_t{1} << 20);
  buf += "UCLA nets 1.0\n\nNumNets : ";
  append_u64(buf, stats.num_nets);
  buf += "\nNumPins : ";
  append_u64(buf, stats.num_pins);
  buf.push_back('\n');

  const auto total = static_cast<std::uint64_t>(params.num_nets);
  std::uint64_t net_index = 0;
  std::vector<VertexId> pins;
  for (std::uint64_t c = 0; c < stats.num_chunks; ++c) {
    draw_chunk(params, seed, c, chunk_nets(total, nets_per_chunk, c), pins,
               [&](const std::vector<VertexId>& p) {
                 buf += "NetDegree : ";
                 append_u64(buf, p.size());
                 buf += " n";
                 append_u64(buf, net_index++);
                 buf.push_back('\n');
                 for (VertexId v : p) {
                   buf += "  m";
                   append_u64(buf, static_cast<std::uint64_t>(v));
                   buf += " B\n";
                 }
               });
    flush_chunk(out, buf, nets_path.c_str());
  }
  out.flush();
  if (!out) throw IoError("write failed on '" + nets_path + "'");
  return stats;
}

}  // namespace fhp

/// \file circuit.hpp
/// Synthetic "industry" netlist generator.
///
/// Stands in for the paper's 1989 proprietary test suite (Bd1-3 boards,
/// IC1-2 chips; Table 1's PCB / standard-cell / gate-array / hybrid
/// technologies). The generator models the structural properties the
/// paper's results depend on:
///
///  - *net-size mix*: mostly small nets (geometric tail) plus a sprinkle
///    of large bus/clock nets — the targets of the §3 large-net filter;
///  - *logical hierarchy*: modules are laid out along a linear hierarchy
///    order and most nets are local to a window, producing the
///    larger-than-random intersection-graph diameter the paper observes
///    ("natural functional partitions within the netlist", §4);
///  - *module areas*: unit for boards, spread for standard cells (area
///    roughly proportional to pin count, §4 "Extensions").
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Technology families of the paper's Table 1.
enum class Technology { kPcb, kStandardCell, kGateArray, kHybrid };

/// Parameters of the synthetic circuit model.
struct CircuitParams {
  VertexId num_modules = 500;
  EdgeId num_nets = 800;
  /// Geometric net-size parameter: P(size = 2 + k) ~ (1-p)^k * p.
  double size_geometric_p = 0.55;
  std::uint32_t max_net_size = 12;  ///< cap for regular nets
  /// Fraction of nets that are global buses/clocks.
  double bus_fraction = 0.01;
  std::uint32_t bus_size_min = 16;
  std::uint32_t bus_size_max = 40;
  /// Fraction of non-bus nets drawn inside a local window (hierarchy).
  double locality = 0.85;
  /// Local window width as a fraction of the module count.
  double window_fraction = 0.06;
  /// Module weights: 1 + geometric spread (0 disables, all weight 1).
  double weight_geometric_p = 0.0;
};

/// Paper-matched presets. \p scale multiplies module and net counts.
[[nodiscard]] CircuitParams pcb_params(double scale = 1.0);
[[nodiscard]] CircuitParams standard_cell_params(double scale = 1.0);
[[nodiscard]] CircuitParams gate_array_params(double scale = 1.0);
[[nodiscard]] CircuitParams hybrid_params(double scale = 1.0);
/// Preset by technology enum.
[[nodiscard]] CircuitParams params_for(Technology tech, double scale = 1.0);
/// Display name of a technology.
[[nodiscard]] std::string technology_name(Technology tech);

/// Parameters matched to the paper's Table 2 instances
/// (modules, signals): Bd1 (103, 211), Bd3 (242, 502), IC1 (561, 800),
/// IC2 (2471, 3496).
[[nodiscard]] CircuitParams table2_params(VertexId modules, EdgeId nets,
                                          Technology tech);

/// Generates a synthetic netlist. The returned hypergraph has at most
/// num_nets nets (degenerate draws are dropped).
[[nodiscard]] Hypergraph generate_circuit(const CircuitParams& params,
                                          std::uint64_t seed);

}  // namespace fhp

/// \file sharded.hpp
/// Sharded (streaming) netlist synthesis for million-module instances.
///
/// generate_circuit() materializes the whole hypergraph in memory before
/// anything can be written, which caps practical instance sizes well below
/// the million-module designs the ingest path is built for. The writers
/// here stream the same circuit model straight to disk chunk-by-chunk:
/// nets are drawn in fixed-size chunks, each chunk from its own forked RNG
/// stream (`Rng(seed).fork(chunk_index)`), formatted into a reused buffer,
/// and appended to the output file. Peak memory is one chunk, independent
/// of instance size.
///
/// Determinism: output depends only on (params, seed, nets_per_chunk).
/// Forked streams make chunks order-independent, but the chunk size is
/// part of the instance identity — the same seed with a different
/// nets_per_chunk yields a different (equally valid) netlist. The stream
/// model matches generate_circuit's net-size mix and locality structure
/// but is not bit-identical to it, and module weights are always 1
/// (per-module weight lines would defeat streaming; callers wanting
/// weighted instances post-process).
#pragma once

#include <cstdint>
#include <string>

#include "gen/circuit.hpp"

namespace fhp {

/// What a sharded writer actually emitted (degenerate draws are dropped,
/// so num_nets can fall slightly short of params.num_nets).
struct ShardedNetlistStats {
  std::uint64_t num_modules = 0;
  std::uint64_t num_nets = 0;
  std::uint64_t num_pins = 0;
  std::uint64_t num_chunks = 0;
};

/// Streams an hMETIS (.hgr) netlist of params.num_modules modules to
/// \p path. Requires params.weight_geometric_p == 0 (unit weights) and
/// params.num_modules < 2^32. Throws IoError on write failure.
ShardedNetlistStats write_sharded_hmetis(const std::string& path,
                                         const CircuitParams& params,
                                         std::uint64_t seed,
                                         std::uint64_t nets_per_chunk = 65536);

/// Streams the same model as a Bookshelf .nodes/.nets pair.
ShardedNetlistStats write_sharded_bookshelf(
    const std::string& nodes_path, const std::string& nets_path,
    const CircuitParams& params, std::uint64_t seed,
    std::uint64_t nets_per_chunk = 65536);

}  // namespace fhp

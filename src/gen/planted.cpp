#include "gen/planted.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace fhp {

namespace {

/// Samples up to \p want distinct modules from \p pool whose degree is
/// below \p cap, appending to \p pins and evicting exhausted pool entries.
void sample_pins(Rng& rng, std::vector<VertexId>& pool,
                 std::vector<std::uint32_t>& degree, std::uint32_t cap,
                 std::uint32_t want, std::vector<std::uint8_t>& in_net,
                 std::vector<VertexId>& pins) {
  int misses = 0;
  std::uint32_t taken = 0;
  while (taken < want && !pool.empty() && misses < 64) {
    const std::size_t slot = rng.next_below(pool.size());
    const VertexId v = pool[slot];
    if (degree[v] >= cap) {
      pool[slot] = pool.back();
      pool.pop_back();
      continue;
    }
    if (in_net[v]) {
      ++misses;
      continue;
    }
    in_net[v] = 1;
    pins.push_back(v);
    ++taken;
  }
}

}  // namespace

PlantedInstance planted_instance(const PlantedParams& params,
                                 std::uint64_t seed) {
  FHP_REQUIRE(params.num_vertices >= 4, "need at least four modules");
  FHP_REQUIRE(params.min_edge_size >= 2, "nets need at least two pins");
  FHP_REQUIRE(params.max_edge_size >= params.min_edge_size,
              "max net size below min net size");
  FHP_REQUIRE(params.planted_cut <= params.num_edges,
              "planted cut larger than the net budget");
  Rng rng(seed);

  PlantedInstance instance;
  const VertexId n = params.num_vertices;
  const VertexId half = n / 2;
  instance.planted_sides.assign(n, 0);
  for (VertexId v = half; v < n; ++v) instance.planted_sides[v] = 1;

  HypergraphBuilder builder;
  builder.add_vertices(n);

  std::vector<std::uint32_t> degree(n, 0);
  std::vector<std::uint8_t> in_net(n, 0);
  const std::uint32_t cap = params.max_degree == 0
                                ? std::numeric_limits<std::uint32_t>::max()
                                : params.max_degree;
  std::vector<VertexId> pool[2];
  for (VertexId v = 0; v < half; ++v) pool[0].push_back(v);
  for (VertexId v = half; v < n; ++v) pool[1].push_back(v);

  std::vector<VertexId> pins;
  const EdgeId internal_edges = params.num_edges - params.planted_cut;
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    const bool crossing = e >= internal_edges;
    const auto size = static_cast<std::uint32_t>(
        rng.next_in(params.min_edge_size, params.max_edge_size));
    pins.clear();
    if (crossing) {
      // At least one pin per half; the rest is split as evenly as the
      // sampled size allows.
      const std::uint32_t left = std::max<std::uint32_t>(1, size / 2);
      const std::uint32_t right = std::max<std::uint32_t>(1, size - left);
      sample_pins(rng, pool[0], degree, cap, left, in_net, pins);
      const auto from_left = static_cast<std::uint32_t>(pins.size());
      sample_pins(rng, pool[1], degree, cap, right, in_net, pins);
      const bool spans =
          from_left > 0 && pins.size() > from_left;
      if (!spans) {
        for (VertexId v : pins) in_net[v] = 0;
        continue;  // capacity exhausted on one half: skip this net
      }
    } else {
      const int side = static_cast<int>(rng.next_below(2));
      sample_pins(rng, pool[side], degree, cap, size, in_net, pins);
    }
    for (VertexId v : pins) in_net[v] = 0;
    if (pins.size() < params.min_edge_size) continue;
    for (VertexId v : pins) ++degree[v];
    builder.add_edge(std::span<const VertexId>(pins));
  }

  instance.hypergraph = std::move(builder).build();
  // Count the realized planted cut (some crossing nets may have been
  // dropped for capacity reasons).
  for (EdgeId e = 0; e < instance.hypergraph.num_edges(); ++e) {
    bool left = false;
    bool right = false;
    for (VertexId v : instance.hypergraph.pins(e)) {
      (instance.planted_sides[v] == 0 ? left : right) = true;
    }
    if (left && right) ++instance.planted_cut;
  }
  return instance;
}

}  // namespace fhp

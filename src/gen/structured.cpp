#include "gen/structured.hpp"

#include <vector>

namespace fhp {

Hypergraph ripple_carry_adder(std::uint32_t bits) {
  FHP_REQUIRE(bits >= 1, "adder needs at least one bit");
  HypergraphBuilder b;
  // Per-slice module layout (offsets within the slice):
  //   0: a pad, 1: b pad, 2: s pad, 3: xor1, 4: xor2, 5: and1, 6: and2,
  //   7: or (carry out)
  constexpr std::uint32_t kSlice = 8;
  const VertexId cin_pad = b.add_vertex();  // global carry-in pad
  b.add_vertices(bits * kSlice);
  auto m = [&](std::uint32_t bit, std::uint32_t offset) {
    return static_cast<VertexId>(1 + bit * kSlice + offset);
  };

  for (std::uint32_t i = 0; i < bits; ++i) {
    const VertexId a = m(i, 0);
    const VertexId bp = m(i, 1);
    const VertexId s = m(i, 2);
    const VertexId xor1 = m(i, 3);
    const VertexId xor2 = m(i, 4);
    const VertexId and1 = m(i, 5);
    const VertexId and2 = m(i, 6);
    const VertexId carry = m(i, 7);
    const VertexId cin = (i == 0) ? cin_pad : m(i - 1, 7);

    b.add_edge({a, xor1, and1});      // net a_i
    b.add_edge({bp, xor1, and1});     // net b_i
    b.add_edge({xor1, xor2, and2});   // p_i = a^b
    b.add_edge({cin, xor2, and2});    // carry-in fans to sum and carry
    b.add_edge({xor2, s});            // sum out
    b.add_edge({and1, carry});        // g_i
    b.add_edge({and2, carry});        // p_i & cin
  }
  return std::move(b).build();
}

Hypergraph array_multiplier(std::uint32_t n) {
  FHP_REQUIRE(n >= 2, "multiplier needs n >= 2");
  HypergraphBuilder b;
  // Cells first (row-major), then 2n operand pads.
  b.add_vertices(n * n);
  auto cell = [n](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(r * n + c);
  };
  std::vector<VertexId> a_pad(n);
  std::vector<VertexId> b_pad(n);
  for (std::uint32_t i = 0; i < n; ++i) a_pad[i] = b.add_vertex();
  for (std::uint32_t j = 0; j < n; ++j) b_pad[j] = b.add_vertex();

  // Sum/carry forwarding mesh.
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      if (c + 1 < n) b.add_edge({cell(r, c), cell(r, c + 1)});
      if (r + 1 < n) b.add_edge({cell(r, c), cell(r + 1, c)});
    }
  }
  // Operand broadcasts: a_i drives row i, b_j drives column j.
  std::vector<VertexId> pins;
  for (std::uint32_t r = 0; r < n; ++r) {
    pins.clear();
    pins.push_back(a_pad[r]);
    for (std::uint32_t c = 0; c < n; ++c) pins.push_back(cell(r, c));
    b.add_edge(std::span<const VertexId>(pins));
  }
  for (std::uint32_t c = 0; c < n; ++c) {
    pins.clear();
    pins.push_back(b_pad[c]);
    for (std::uint32_t r = 0; r < n; ++r) pins.push_back(cell(r, c));
    b.add_edge(std::span<const VertexId>(pins));
  }
  return std::move(b).build();
}

Hypergraph butterfly_network(std::uint32_t log_n, std::uint32_t stages) {
  FHP_REQUIRE(log_n >= 1, "butterfly needs at least two rows");
  FHP_REQUIRE(log_n < 20, "butterfly size cap");
  FHP_REQUIRE(stages >= 1, "butterfly needs at least one stage");
  const std::uint32_t rows = 1U << log_n;
  HypergraphBuilder b;
  b.add_vertices((stages + 1) * rows);
  auto node = [rows](std::uint32_t stage, std::uint32_t row) {
    return static_cast<VertexId>(stage * rows + row);
  };
  for (std::uint32_t s = 0; s < stages; ++s) {
    const std::uint32_t stride = 1U << (s % log_n);
    for (std::uint32_t r = 0; r < rows; ++r) {
      b.add_edge({node(s, r), node(s + 1, r)});
      const std::uint32_t partner = r ^ stride;
      if (r < partner) {  // emit each cross pair once
        b.add_edge({node(s, r), node(s + 1, partner)});
        b.add_edge({node(s, partner), node(s + 1, r)});
      }
    }
  }
  return std::move(b).build();
}

Hypergraph h_tree(std::uint32_t depth) {
  FHP_REQUIRE(depth >= 2, "tree needs at least two levels");
  FHP_REQUIRE(depth < 28, "tree size cap");
  const VertexId n = (VertexId{1} << depth) - 1;
  HypergraphBuilder b;
  b.add_vertices(n);
  for (VertexId v = 0; 2 * v + 1 < n; ++v) {
    const VertexId left = 2 * v + 1;
    const VertexId right = 2 * v + 2;
    if (right < n) {
      b.add_edge({v, left, right});
    } else {
      b.add_edge({v, left});
    }
  }
  return std::move(b).build();
}

}  // namespace fhp

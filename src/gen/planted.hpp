/// \file planted.hpp
/// "Difficult" instances with a planted bisection (Bui–Chaudhuri–Leighton–
/// Sipser model, paper §3-§4): random hypergraphs whose minimum cutsize c
/// is far below the random-instance expectation, c = o(n^{1-1/d}). These
/// are the inputs on which the paper proves Algorithm I finds the optimum
/// while KL/annealing get stuck.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Parameters of the planted-bisection model.
struct PlantedParams {
  VertexId num_vertices = 500;  ///< split into two equal halves
  EdgeId num_edges = 700;       ///< total nets including the planted cut
  EdgeId planted_cut = 8;       ///< c: nets forced to cross the halves
  std::uint32_t min_edge_size = 2;
  std::uint32_t max_edge_size = 4;  ///< r
  std::uint32_t max_degree = 6;     ///< d; 0 = unbounded
};

/// A generated difficult instance with ground truth.
struct PlantedInstance {
  Hypergraph hypergraph;
  std::vector<std::uint8_t> planted_sides;  ///< the hidden bisection
  EdgeId planted_cut = 0;  ///< nets crossing the planted bisection
};

/// Generates an instance: modules are split into two fixed halves;
/// `num_edges - planted_cut` nets are drawn entirely inside a uniformly
/// chosen half, and `planted_cut` nets get pins from both halves. With c
/// well below the random expectation Θ(edges), the planted bisection is
/// the unique minimum cut with overwhelming probability. planted_cut = 0
/// yields the paper's pathological disconnected case.
[[nodiscard]] PlantedInstance planted_instance(const PlantedParams& params,
                                               std::uint64_t seed);

}  // namespace fhp

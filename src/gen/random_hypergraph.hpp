/// \file random_hypergraph.hpp
/// Random hypergraph generator for the class H(n, d, r) the paper's
/// probabilistic analysis uses (§3): n modules, module degree <= d,
/// net size <= r, nets otherwise uniform.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Parameters of the H(n, d, r) random model.
struct RandomHypergraphParams {
  VertexId num_vertices = 100;  ///< n
  EdgeId num_edges = 150;       ///< number of nets to attempt
  std::uint32_t min_edge_size = 2;
  std::uint32_t max_edge_size = 4;   ///< r
  std::uint32_t max_degree = 6;      ///< d; 0 = unbounded
};

/// Generates a random hypergraph. Net sizes are uniform in
/// [min_edge_size, max_edge_size]; pins are sampled uniformly among
/// modules whose degree is still below max_degree. Nets that cannot reach
/// min_edge_size because capacity ran out are dropped, so the result can
/// have fewer than num_edges nets. Unit weights.
[[nodiscard]] Hypergraph random_hypergraph(const RandomHypergraphParams& params,
                                           std::uint64_t seed);

}  // namespace fhp

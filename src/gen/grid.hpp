/// \file grid.hpp
/// Mesh ("sea of gates") netlist generator: modules on a rows x cols grid
/// with nearest-neighbor connectivity, optional longer row/column segment
/// nets, and known cut geometry — a vertical bisection of an r x c mesh
/// cuts about r nets, making these instances good optimality yardsticks.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Parameters of the mesh model.
struct GridParams {
  std::uint32_t rows = 16;
  std::uint32_t cols = 16;
  /// Fraction of horizontal/vertical *segment* nets (3-in-a-row spans)
  /// layered on top of the adjacency mesh.
  double segment_fraction = 0.0;
  /// Wrap rows and columns into a torus (doubles the minimum cut).
  bool torus = false;
};

/// Generates the mesh netlist; module id = row * cols + col, unit
/// weights. Deterministic except for segment placement, which uses
/// \p seed.
[[nodiscard]] Hypergraph grid_circuit(const GridParams& params,
                                      std::uint64_t seed = 1);

}  // namespace fhp

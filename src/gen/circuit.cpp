#include "gen/circuit.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace fhp {

CircuitParams pcb_params(double scale) {
  // Boards: small modules with many two-point connections, pronounced
  // connector locality, a few wide buses.
  CircuitParams p;
  p.num_modules = static_cast<VertexId>(120 * scale);
  p.num_nets = static_cast<EdgeId>(240 * scale);
  p.size_geometric_p = 0.65;
  p.max_net_size = 8;
  p.bus_fraction = 0.02;
  p.bus_size_min = 16;
  p.bus_size_max = 32;
  p.locality = 0.88;
  p.window_fraction = 0.08;
  p.weight_geometric_p = 0.0;  // board packages treated as unit area
  return p;
}

CircuitParams standard_cell_params(double scale) {
  // Standard cells: larger designs, moderate net sizes, strong logical
  // hierarchy, cell area roughly tracking pin count.
  CircuitParams p;
  p.num_modules = static_cast<VertexId>(600 * scale);
  p.num_nets = static_cast<EdgeId>(900 * scale);
  p.size_geometric_p = 0.55;
  p.max_net_size = 10;
  p.bus_fraction = 0.01;
  p.bus_size_min = 20;
  p.bus_size_max = 40;
  p.locality = 0.85;
  p.window_fraction = 0.05;
  p.weight_geometric_p = 0.45;
  return p;
}

CircuitParams gate_array_params(double scale) {
  // Gate arrays: sea of identical gates, small nets, tight locality.
  CircuitParams p;
  p.num_modules = static_cast<VertexId>(800 * scale);
  p.num_nets = static_cast<EdgeId>(1100 * scale);
  p.size_geometric_p = 0.7;
  p.max_net_size = 6;
  p.bus_fraction = 0.005;
  p.bus_size_min = 16;
  p.bus_size_max = 24;
  p.locality = 0.9;
  p.window_fraction = 0.04;
  p.weight_geometric_p = 0.0;
  return p;
}

CircuitParams hybrid_params(double scale) {
  // Hybrids: few large heterogeneous parts, relatively dense connectivity,
  // weaker hierarchy.
  CircuitParams p;
  p.num_modules = static_cast<VertexId>(90 * scale);
  p.num_nets = static_cast<EdgeId>(160 * scale);
  p.size_geometric_p = 0.5;
  p.max_net_size = 10;
  p.bus_fraction = 0.03;
  p.bus_size_min = 12;
  p.bus_size_max = 24;
  p.locality = 0.7;
  p.window_fraction = 0.15;
  p.weight_geometric_p = 0.6;
  return p;
}

CircuitParams params_for(Technology tech, double scale) {
  switch (tech) {
    case Technology::kPcb:
      return pcb_params(scale);
    case Technology::kStandardCell:
      return standard_cell_params(scale);
    case Technology::kGateArray:
      return gate_array_params(scale);
    case Technology::kHybrid:
      return hybrid_params(scale);
  }
  FHP_ASSERT(false, "unknown technology");
  return {};
}

std::string technology_name(Technology tech) {
  switch (tech) {
    case Technology::kPcb:
      return "PCB";
    case Technology::kStandardCell:
      return "Std-cell";
    case Technology::kGateArray:
      return "Gate-array";
    case Technology::kHybrid:
      return "Hybrid";
  }
  return "?";
}

CircuitParams table2_params(VertexId modules, EdgeId nets, Technology tech) {
  CircuitParams p = params_for(tech);
  p.num_modules = modules;
  p.num_nets = nets;
  return p;
}

Hypergraph generate_circuit(const CircuitParams& params, std::uint64_t seed) {
  FHP_REQUIRE(params.num_modules >= 4, "need at least four modules");
  FHP_REQUIRE(params.size_geometric_p > 0.0 && params.size_geometric_p <= 1.0,
              "geometric parameter out of range");
  FHP_REQUIRE(params.max_net_size >= 2, "nets need at least two pins");
  FHP_REQUIRE(params.bus_size_max >= params.bus_size_min &&
                  params.bus_size_min >= 2,
              "bad bus size range");
  Rng rng(seed);
  const VertexId n = params.num_modules;

  HypergraphBuilder builder;
  builder.add_vertices(n);

  const auto window = std::max<VertexId>(
      4, static_cast<VertexId>(static_cast<double>(n) * params.window_fraction));

  std::vector<VertexId> pins;
  std::vector<std::uint32_t> pin_count(n, 0);

  for (EdgeId e = 0; e < params.num_nets; ++e) {
    pins.clear();
    const bool bus = rng.next_bool(params.bus_fraction);
    std::uint32_t size;
    if (bus) {
      size = static_cast<std::uint32_t>(
          rng.next_in(params.bus_size_min, params.bus_size_max));
      size = std::min<std::uint32_t>(size, n);
      // Buses are global: uniform pins over the whole design.
      const auto sample = rng.sample_distinct(n, size);
      pins.assign(sample.begin(), sample.end());
    } else {
      size = 2;
      // Geometric tail above the minimum size of 2.
      std::uint32_t extra =
          static_cast<std::uint32_t>(rng.next_geometric(params.size_geometric_p)) -
          1;
      size = std::min(params.max_net_size, size + extra);
      // Two-tier hierarchy: most nets live in a tight local window, the
      // rest mostly in a wider block-level window; only a sliver is truly
      // global. This mirrors the logical hierarchy of real netlists — the
      // reason the paper observes larger-than-random intersection-graph
      // diameters on industry circuits (§4).
      VertexId span;
      if (rng.next_bool(params.locality)) {
        span = window;
      } else if (rng.next_bool(0.85)) {
        span = window * 4;
      } else {
        span = n;
      }
      span = std::min<VertexId>(span, n);
      const auto start =
          static_cast<VertexId>(rng.next_below(n - span + 1));
      const std::uint32_t take = std::min<std::uint32_t>(size, span);
      const auto sample = rng.sample_distinct(span, take);
      pins.reserve(take);
      for (std::uint32_t offset : sample) {
        pins.push_back(start + offset);
      }
    }
    if (pins.size() < 2) continue;
    for (VertexId v : pins) ++pin_count[v];
    builder.add_edge(std::span<const VertexId>(pins));
  }

  if (params.weight_geometric_p > 0.0) {
    // Cell area ~ 1 + pins-driven geometric spread: big cells host more
    // I/O, mirroring the paper's standard-cell observation.
    for (VertexId v = 0; v < n; ++v) {
      const auto spread = static_cast<Weight>(
          rng.next_geometric(params.weight_geometric_p) - 1);
      builder.set_vertex_weight(
          v, 1 + static_cast<Weight>(pin_count[v] / 2) + spread);
    }
  }
  return std::move(builder).build();
}

}  // namespace fhp

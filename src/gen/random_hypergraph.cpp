#include "gen/random_hypergraph.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace fhp {

Hypergraph random_hypergraph(const RandomHypergraphParams& params,
                             std::uint64_t seed) {
  FHP_REQUIRE(params.num_vertices >= 2, "need at least two modules");
  FHP_REQUIRE(params.min_edge_size >= 2, "nets need at least two pins");
  FHP_REQUIRE(params.max_edge_size >= params.min_edge_size,
              "max net size below min net size");
  Rng rng(seed);

  HypergraphBuilder builder;
  builder.add_vertices(params.num_vertices);

  // Pool of modules with remaining degree capacity. We sample from the
  // pool and lazily evict exhausted entries, giving near-uniform pin
  // selection among capacity-holders.
  std::vector<std::uint32_t> degree(params.num_vertices, 0);
  std::vector<VertexId> pool(params.num_vertices);
  std::iota(pool.begin(), pool.end(), 0U);
  const std::uint32_t cap = params.max_degree == 0
                                ? std::numeric_limits<std::uint32_t>::max()
                                : params.max_degree;

  std::vector<VertexId> pins;
  std::vector<std::uint8_t> in_net(params.num_vertices, 0);
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    const auto size = static_cast<std::uint32_t>(
        rng.next_in(params.min_edge_size, params.max_edge_size));
    pins.clear();
    // Rejection-sample distinct pins with capacity; give up on this net
    // after a bounded number of misses (pool nearly exhausted).
    int misses = 0;
    while (pins.size() < size && !pool.empty() && misses < 64) {
      const std::size_t slot = rng.next_below(pool.size());
      const VertexId v = pool[slot];
      if (degree[v] >= cap) {  // exhausted: evict and retry
        pool[slot] = pool.back();
        pool.pop_back();
        continue;
      }
      if (in_net[v]) {
        ++misses;
        continue;
      }
      in_net[v] = 1;
      pins.push_back(v);
    }
    for (VertexId v : pins) in_net[v] = 0;
    if (pins.size() < params.min_edge_size) continue;
    for (VertexId v : pins) ++degree[v];
    builder.add_edge(std::span<const VertexId>(pins));
  }
  return std::move(builder).build();
}

}  // namespace fhp

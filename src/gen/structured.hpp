/// \file structured.hpp
/// Structured gate-level netlist generators.
///
/// The paper evaluates on proprietary industry circuits; these generators
/// provide the reproducible equivalent — netlists whose topology follows
/// real datapath/clock structures with *known* cut geometry:
///
///  - ripple-carry adder: a 1-D chain of full-adder gate clusters; the
///    minimum balanced cut severs one carry chain (tiny cut);
///  - array multiplier: a 2-D cell array with row/column broadcast nets
///    (the long buses the §3 filter is designed for);
///  - butterfly (FFT) network: expander-like stage connectivity — large
///    minimum bisection, the hard regime for any cut heuristic;
///  - H-tree clock: a binary tree — minimum cut 1 at every level.
///
/// All generators are deterministic; modules have unit weight.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Gate-level ripple-carry adder over \p bits bit slices. Each slice is
/// the classic 5-gate full adder (2 XOR, 2 AND, 1 OR) plus input pads
/// a_i, b_i and output pad s_i; slices are linked by the carry net.
/// ~8 modules and ~7 nets per bit.
[[nodiscard]] Hypergraph ripple_carry_adder(std::uint32_t bits);

/// n x n array multiplier: one cell per partial-product position, nets to
/// the right and lower neighbor (sum/carry forwarding), plus one
/// (n+1)-pin broadcast net per operand bit (row net for a_i, column net
/// for b_j) anchored at a pad. Requires n >= 2.
[[nodiscard]] Hypergraph array_multiplier(std::uint32_t n);

/// Butterfly network with 2^log_n rows and \p stages stage columns:
/// module (s, i) connects to (s+1, i) and (s+1, i XOR 2^(s % log_n)).
/// Requires log_n >= 1 and stages >= 1.
[[nodiscard]] Hypergraph butterfly_network(std::uint32_t log_n,
                                           std::uint32_t stages);

/// Complete binary tree of \p depth levels (H-tree clock spine):
/// 2^depth - 1 modules, one 3-pin net per internal node covering it and
/// its children (a 2-pin net at depth-1 leaves' parents when the tree is
/// truncated). Requires depth >= 2.
[[nodiscard]] Hypergraph h_tree(std::uint32_t depth);

}  // namespace fhp

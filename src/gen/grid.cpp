#include "gen/grid.hpp"

#include "util/rng.hpp"

namespace fhp {

Hypergraph grid_circuit(const GridParams& params, std::uint64_t seed) {
  FHP_REQUIRE(params.rows >= 1 && params.cols >= 1, "empty grid");
  FHP_REQUIRE(params.rows * params.cols >= 2, "need at least two modules");
  FHP_REQUIRE(params.segment_fraction >= 0.0 && params.segment_fraction <= 1.0,
              "segment fraction out of range");
  Rng rng(seed);

  const std::uint32_t rows = params.rows;
  const std::uint32_t cols = params.cols;
  auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };

  HypergraphBuilder builder;
  builder.add_vertices(rows * cols);

  // Nearest-neighbor adjacency nets.
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c + 1 < cols; ++c) {
      builder.add_edge({id(r, c), id(r, c + 1)});
    }
    if (params.torus && cols > 2) {
      builder.add_edge({id(r, cols - 1), id(r, 0)});
    }
  }
  for (std::uint32_t c = 0; c < cols; ++c) {
    for (std::uint32_t r = 0; r + 1 < rows; ++r) {
      builder.add_edge({id(r, c), id(r + 1, c)});
    }
    if (params.torus && rows > 2) {
      builder.add_edge({id(rows - 1, c), id(0, c)});
    }
  }

  // Optional 3-span segment nets (local buses along rows/columns).
  if (params.segment_fraction > 0.0) {
    const auto target = static_cast<std::uint32_t>(
        params.segment_fraction * static_cast<double>(rows * cols));
    for (std::uint32_t i = 0; i < target; ++i) {
      const bool horizontal = rng.next_bool(0.5);
      if (horizontal && cols >= 3) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(rows));
        const auto c = static_cast<std::uint32_t>(rng.next_below(cols - 2));
        builder.add_edge({id(r, c), id(r, c + 1), id(r, c + 2)});
      } else if (rows >= 3) {
        const auto r = static_cast<std::uint32_t>(rng.next_below(rows - 2));
        const auto c = static_cast<std::uint32_t>(rng.next_below(cols));
        builder.add_edge({id(r, c), id(r + 1, c), id(r + 2, c)});
      }
    }
  }
  return std::move(builder).build();
}

}  // namespace fhp

#include "core/algorithm1.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "core/boundary.hpp"
#include "core/intersection.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/reorder.hpp"
#include "hypergraph/transform.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fhp {

namespace {

/// Forced-side markers for modules during assembly.
constexpr std::uint8_t kSide0 = 0;
constexpr std::uint8_t kSide1 = 1;
constexpr std::uint8_t kPending = 2;  ///< only boundary nets touch it
constexpr std::uint8_t kFree = 3;     ///< no (filtered) nets touch it

/// Lexicographic "is better" for two results under an objective.
bool better(const Algorithm1Result& a, const Algorithm1Result& b,
            Objective objective) {
  if (objective == Objective::kQuotient) {
    if (a.metrics.quotient_cut != b.metrics.quotient_cut) {
      return a.metrics.quotient_cut < b.metrics.quotient_cut;
    }
    return a.metrics.cut_edges < b.metrics.cut_edges;
  }
  if (a.metrics.cut_edges != b.metrics.cut_edges) {
    return a.metrics.cut_edges < b.metrics.cut_edges;
  }
  return a.metrics.weight_imbalance < b.metrics.weight_imbalance;
}

/// Distributes the weights of \p vertices (descending weight) onto the
/// lighter of the running side weights; writes sides in-place. \p order is
/// caller-owned sort scratch (the hot path hands in its workspace buffer).
void balance_assign(const Hypergraph& h, const std::vector<VertexId>& vertices,
                    std::vector<std::uint8_t>& sides, Weight weights[2],
                    std::vector<VertexId>& order) {
  order.assign(vertices.begin(), vertices.end());
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const Weight wa = h.vertex_weight(a);
    const Weight wb = h.vertex_weight(b);
    return wa != wb ? wa > wb : a < b;
  });
  for (VertexId v : order) {
    const std::uint8_t s = (weights[0] <= weights[1]) ? kSide0 : kSide1;
    sides[v] = s;
    weights[s] += h.vertex_weight(v);
  }
}

/// Allocating convenience overload for the cold paths.
void balance_assign(const Hypergraph& h, const std::vector<VertexId>& vertices,
                    std::vector<std::uint8_t>& sides, Weight weights[2]) {
  std::vector<VertexId> order;
  balance_assign(h, vertices, sides, weights, order);
}

/// Guarantees both sides are nonempty by flipping the lightest vertex of
/// the full side if needed (only reachable on tiny or degenerate inputs).
void ensure_proper(const Hypergraph& h, std::vector<std::uint8_t>& sides) {
  VertexId counts[2] = {0, 0};
  for (std::uint8_t s : sides) ++counts[s];
  if (counts[0] > 0 && counts[1] > 0) return;
  const std::uint8_t full = counts[0] == 0 ? kSide1 : kSide0;
  VertexId lightest = kInvalidVertex;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (sides[v] != full) continue;
    if (lightest == kInvalidVertex ||
        h.vertex_weight(v) < h.vertex_weight(lightest)) {
      lightest = v;
    }
  }
  FHP_ASSERT(lightest != kInvalidVertex, "no vertex to rebalance with");
  sides[lightest] = static_cast<std::uint8_t>(1 - full);
}

}  // namespace

Algorithm1Context::Algorithm1Context(const Hypergraph& h,
                                     const Algorithm1Options& options)
    : h_(&h), options_(options) {
  FHP_REQUIRE(h.num_vertices() >= 2,
              "a proper cut needs at least two modules");
  const int lanes = resolve_threads(options.threads);
  if (lanes > 1) pool_ = std::make_unique<ThreadPool>(lanes);
  {
    FHP_TRACE_SCOPE("filter");
    if (options.large_edge_threshold > 0) {
      FHP_REQUIRE(options.large_edge_threshold >= 2,
                  "a net-size threshold below 2 drops every net");
      filtered_ =
          filter_large_edges(h, options.large_edge_threshold).hypergraph;
    } else {
      filtered_ = filter_trivial_edges(h).hypergraph;
    }
  }
  FHP_COUNTER_ADD("alg1/filtered_nets",
                  static_cast<long long>(filtered_edge_count()));
  IntersectionOptions intersection_options;
  intersection_options.pool = pool_.get();
  g_ = intersection_graph(filtered_, intersection_options);
  {
    FHP_TRACE_SCOPE("components");
    const Components comps = connected_components(g_);
    g_component_ = comps.label;
    g_component_count_ = comps.count();
  }
  degenerate_ = (g_.num_vertices() == 0) || (g_component_count_ > 1);
  if (options_.reorder && !degenerate_ && g_.num_vertices() >= 2) {
    // Locality permutation for the BFS-heavy steps (graph/reorder.hpp).
    // Results are mapped back to original net ids immediately after the
    // initial cut, so everything downstream — memo keys, boundary
    // extraction, completion, reported cuts — lives in original ids and
    // the partition is provably unaffected (see find_pair/run_from_pair).
    FHP_TRACE_SCOPE("reorder");
    Timer timer;
    perm_ = degree_bucketed_bfs_order(g_);
    if (!perm_.is_identity()) {
      g_perm_ = g_.permuted(perm_);
      reordered_ = true;
    }
    FHP_GAUGE_SET("algorithm1/reorder_ms", timer.seconds() * 1e3);
  }
}

Algorithm1Result Algorithm1Context::run_degenerate() const {
  FHP_TRACE_SCOPE("degenerate");
  FHP_COUNTER_ADD("alg1/degenerate_shortcuts", 1);
  const Hypergraph& h = *h_;
  Algorithm1Result result;
  result.disconnected_shortcut = true;
  result.filtered_edges = filtered_edge_count();
  result.sides.assign(h.num_vertices(), kSide0);

  // Blocks of modules glued together by a G-component; modules with no
  // surviving nets float freely.
  std::vector<std::vector<VertexId>> blocks(g_component_count_);
  std::vector<std::uint8_t> placed(h.num_vertices(), 0);
  for (EdgeId e = 0; e < filtered_.num_edges(); ++e) {
    const VertexId comp = g_component_[e];
    for (VertexId v : filtered_.pins(e)) {
      if (!placed[v]) {
        placed[v] = 1;
        blocks[comp].push_back(v);
      }
    }
  }
  std::vector<VertexId> free_vertices;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (!placed[v]) free_vertices.push_back(v);
  }

  // If one block dominates the total weight, packing whole blocks cannot
  // come close to balance: bisect the dominant block with Algorithm I
  // (its dual component is connected, so this does not recurse into the
  // degenerate path again) and treat its halves as two blocks.
  {
    Weight total = 0;
    std::size_t heaviest = 0;
    Weight heaviest_weight = 0;
    std::vector<Weight> weight_of(blocks.size(), 0);
    for (std::size_t bidx = 0; bidx < blocks.size(); ++bidx) {
      for (VertexId v : blocks[bidx]) weight_of[bidx] += h.vertex_weight(v);
      total += weight_of[bidx];
      if (weight_of[bidx] > heaviest_weight) {
        heaviest_weight = weight_of[bidx];
        heaviest = bidx;
      }
    }
    for (VertexId v : free_vertices) total += h.vertex_weight(v);
    if (2 * heaviest_weight > total && blocks[heaviest].size() >= 2) {
      std::vector<std::uint8_t> keep(h.num_vertices(), 0);
      for (VertexId v : blocks[heaviest]) keep[v] = 1;
      const InducedResult sub = induced_subhypergraph(h, keep);
      Algorithm1Options inner_options = options_;
      std::uint64_t sm = options_.seed;
      inner_options.seed = splitmix64(sm);
      inner_options.collect_trace = false;  // snapshots only at top level
      const Algorithm1Result inner = algorithm1(sub.hypergraph, inner_options);
      std::vector<VertexId> half0;
      std::vector<VertexId> half1;
      for (VertexId u = 0; u < sub.hypergraph.num_vertices(); ++u) {
        (inner.sides[u] == 0 ? half0 : half1)
            .push_back(sub.kept_vertices[u]);
      }
      blocks[heaviest] = std::move(half0);
      blocks.push_back(std::move(half1));
    }
  }

  // Pack blocks (largest weight first) onto the lighter side — a zero cut
  // on the filtered instance in the true c = 0 case, matching the paper's
  // observation; when the dominant block was bisected above, only its
  // internal cut is paid.
  std::vector<VertexId> block_order(blocks.size());
  std::iota(block_order.begin(), block_order.end(), 0U);
  std::vector<Weight> block_weight(blocks.size(), 0);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (VertexId v : blocks[b]) block_weight[b] += h.vertex_weight(v);
  }
  std::sort(block_order.begin(), block_order.end(),
            [&](VertexId a, VertexId b) {
              return block_weight[a] != block_weight[b]
                         ? block_weight[a] > block_weight[b]
                         : a < b;
            });
  Weight weights[2] = {0, 0};
  for (VertexId b : block_order) {
    const std::uint8_t s = (weights[0] <= weights[1]) ? kSide0 : kSide1;
    for (VertexId v : blocks[b]) result.sides[v] = s;
    weights[s] += block_weight[b];
  }
  balance_assign(h, free_vertices, result.sides, weights);
  ensure_proper(h, result.sides);

  const Bipartition partition(h, result.sides);
  result.metrics = compute_metrics(partition);
  return result;
}

Algorithm1Result Algorithm1Context::run_floating_split() const {
  FHP_TRACE_SCOPE("floating_split");
  const Hypergraph& h = *h_;
  Algorithm1Result result;
  result.filtered_edges = filtered_edge_count();
  result.sides.assign(h.num_vertices(), kSide0);
  std::vector<VertexId> floating;
  Weight netted_weight = 0;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    if (filtered_.degree(v) == 0) {
      result.sides[v] = kSide1;
      floating.push_back(v);
    } else {
      netted_weight += h.vertex_weight(v);
    }
  }
  if (floating.empty() || floating.size() == h.num_vertices()) {
    // Not applicable; metrics stay improper so callers discard it.
    return result;
  }
  // Floating modules touch no filtered net, so distributing them for
  // balance is free — but side 1 must keep at least one of them for the
  // cut to stay proper, so the heaviest floater is pinned there.
  std::sort(floating.begin(), floating.end(), [&](VertexId a, VertexId b) {
    const Weight wa = h.vertex_weight(a);
    const Weight wb = h.vertex_weight(b);
    return wa != wb ? wa > wb : a < b;
  });
  Weight weights[2] = {netted_weight, h.vertex_weight(floating.front())};
  std::vector<VertexId> rest(floating.begin() + 1, floating.end());
  balance_assign(h, rest, result.sides, weights);
  result.metrics = compute_metrics(Bipartition(h, result.sides));
  result.starts_run = 1;
  return result;
}

Algorithm1Result Algorithm1Context::run_single(VertexId start) const {
  StartScratch scratch;
  Algorithm1Result result = run_single(start, scratch);
  // Allocate-per-call convenience wrapper: every buffer the scratch grew
  // was an allocation this call paid for (the per-lane reuse path exports
  // the same counter once per multi-start run instead of once per start).
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(scratch.ws.grow_events()));
  return result;
}

Algorithm1Result Algorithm1Context::run_single(VertexId start,
                                               StartScratch& scratch) const {
  FHP_REQUIRE(!degenerate_, "degenerate instance: use run_degenerate()");
  FHP_REQUIRE(start < g_.num_vertices(), "start vertex out of range");
  FHP_COUNTER_ADD("alg1/starts_examined", 1);
  FHP_HIST_SCOPE_US("alg1/start_latency_us");
  const Hypergraph& h = *h_;

  // --- Single-net corner case: G is one vertex; the only proper options
  // are "net on one side, the rest on the other" (cut 0) or splitting the
  // net. Prefer the former when possible.
  if (g_.num_vertices() == 1) {
    Algorithm1Result result;
    result.filtered_edges = filtered_edge_count();
    result.sides.assign(h.num_vertices(), kSide0);
    std::vector<std::uint8_t>& sides = result.sides;
    const auto net_pins = filtered_.pins(0);
    if (net_pins.size() < h.num_vertices()) {
      for (VertexId v : net_pins) sides[v] = kSide1;
    } else {
      // Every module is on the lone net: split it as evenly as possible.
      Weight weights[2] = {0, 0};
      std::vector<VertexId> all(net_pins.begin(), net_pins.end());
      balance_assign(h, all, sides, weights);
    }
    ensure_proper(h, sides);
    {
      FHP_TRACE_SCOPE("score");
      result.metrics = compute_metrics(Bipartition(h, sides));
    }
    result.starts_run = 1;
    return result;
  }

  // --- Steps 1-2: pseudo-diameter pair, then everything downstream of it.
  return run_from_pair(find_pair(start, scratch.ws), scratch);
}

DiameterPair Algorithm1Context::find_pair(VertexId start, Workspace& ws) const {
  FHP_REQUIRE(!degenerate_, "degenerate instance: use run_degenerate()");
  FHP_REQUIRE(start < g_.num_vertices(), "start vertex out of range");
  FHP_REQUIRE(g_.num_vertices() >= 2,
              "a pseudo-diameter pair needs at least two G-vertices");
  if (!reordered_) {
    return longest_path_from(g_, start, options_.bfs_sweeps, ws);
  }
  // Traverse the locality-permuted graph but break `farthest` ties by
  // original id (tie_rank = inverse permutation): the elected endpoints —
  // and hence the memo keys and everything downstream — are exactly those
  // the un-reordered run elects.
  BfsKernelOptions kernel;
  kernel.tie_rank = perm_.to_old.data();
  DiameterPair pair = longest_path_from(g_perm_, perm_.to_new[start],
                                        options_.bfs_sweeps, ws, kernel);
  pair.s = perm_.to_old[pair.s];
  pair.t = perm_.to_old[pair.t];
  return pair;
}

Algorithm1Result Algorithm1Context::run_from_pair(const DiameterPair& pair,
                                                  StartScratch& scratch) const {
  FHP_REQUIRE(!degenerate_, "degenerate instance: use run_degenerate()");
  const Hypergraph& h = *h_;
  FHP_ASSERT(pair.s != pair.t, "connected G with >= 2 vertices expected");
  FHP_GAUGE_SET("alg1/pseudo_diameter", pair.distance);

  if (options_.initial_cut == InitialCutStrategy::kLevelSweep) {
    // Try every BFS level-prefix cut from pair.s and keep the best
    // completed partition. Raw cutsize would always elect the degenerate
    // end-of-sweep positions (slicing one corner off), so candidates with
    // a lighter side below a quarter of the total weight only win when no
    // balanced prefix exists.
    std::uint32_t depth = 0;
    {
      FHP_TRACE_SCOPE("initial_cut");
      // Distance labels are relabeling-invariant, so the sweep may run on
      // the permuted graph; the copy-out below indexes through the
      // permutation to land the labels back on original ids.
      const BfsSummary levels =
          reordered_ ? bfs_scan(g_perm_, perm_.to_new[pair.s], scratch.ws)
                     : bfs_scan(g_, pair.s, scratch.ws);
      depth = levels.depth;
      // The completion sweep below reuses the workspace, so the distance
      // labels must outlive it: copy them into the dedicated buffer.
      scratch.levels.resize(g_.num_vertices());
      for (VertexId u = 0; u < g_.num_vertices(); ++u) {
        scratch.levels[u] =
            scratch.ws.distance.get(reordered_ ? perm_.to_new[u] : u);
      }
    }
    const Weight total = h.total_vertex_weight();
    Algorithm1Result best;
    bool have_best = false;
    bool best_balanced = false;
    for (std::uint32_t cutoff = 0; cutoff < depth; ++cutoff) {
      scratch.g_side.assign(g_.num_vertices(), 1);
      for (VertexId u = 0; u < g_.num_vertices(); ++u) {
        if (scratch.levels[u] <= cutoff) scratch.g_side[u] = 0;
      }
      Algorithm1Result candidate = complete_from_cut_impl(scratch.g_side,
                                                          scratch);
      candidate.pseudo_diameter = pair.distance;
      const bool balanced =
          2 * candidate.metrics.weight_imbalance <= total;
      bool take;
      if (!have_best) {
        take = true;
      } else if (balanced != best_balanced) {
        take = balanced;
      } else {
        take = candidate.metrics.cut_edges < best.metrics.cut_edges ||
               (candidate.metrics.cut_edges == best.metrics.cut_edges &&
                candidate.metrics.weight_imbalance <
                    best.metrics.weight_imbalance);
      }
      if (take) {
        best = std::move(candidate);
        have_best = true;
        best_balanced = balanced;
      }
    }
    FHP_ASSERT(have_best, "BFS depth >= 1 on a connected G with >= 2 nodes");
    best.starts_run = 1;
    return best;
  }

  // The region-growing cut is a function of adjacency and region sizes
  // only (see bfs.hpp), so it may run on the permuted graph; the claimed
  // sides are mapped back through the inverse permutation BEFORE boundary
  // extraction, whose tie-breaking is index-sensitive and must see
  // original ids for reorder on/off to stay bit-identical.
  if (reordered_) {
    bidirectional_bfs_cut(g_perm_, perm_.to_new[pair.s], perm_.to_new[pair.t],
                          scratch.ws, scratch.cut);
    scratch.g_side.resize(g_.num_vertices());
    for (VertexId u = 0; u < g_.num_vertices(); ++u) {
      const std::uint8_t s = scratch.cut.side[perm_.to_new[u]];
      FHP_ASSERT(s != 2, "all G-vertices reachable when G is connected");
      scratch.g_side[u] = s;
    }
  } else {
    bidirectional_bfs_cut(g_, pair.s, pair.t, scratch.ws, scratch.cut);
    scratch.g_side.assign(scratch.cut.side.begin(), scratch.cut.side.end());
    for (std::uint8_t s : scratch.g_side) {
      FHP_ASSERT(s != 2, "all G-vertices reachable when G is connected");
    }
  }
  Algorithm1Result completed = complete_from_cut_impl(scratch.g_side,
                                                      scratch);
  completed.pseudo_diameter = pair.distance;
  completed.starts_run = 1;
  return completed;
}

Algorithm1Result Algorithm1Context::complete_from_cut(
    std::vector<std::uint8_t> g_side) const {
  StartScratch scratch;
  Algorithm1Result result = complete_from_cut_impl(g_side, scratch);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(scratch.ws.grow_events()));
  return result;
}

Algorithm1Result Algorithm1Context::complete_from_cut_impl(
    std::span<const std::uint8_t> g_side, StartScratch& scratch) const {
  FHP_REQUIRE(!degenerate_, "degenerate instance: use run_degenerate()");
  FHP_REQUIRE(g_side.size() == g_.num_vertices(),
              "one side per G-vertex expected");
  const Hypergraph& h = *h_;
  Algorithm1Result result;
  result.filtered_edges = filtered_edge_count();
  result.sides.assign(h.num_vertices(), kSide0);

  extract_boundary(g_, g_side, scratch.ws, scratch.boundary);
  const BoundaryStructure& boundary = scratch.boundary;
  result.boundary_size = boundary.size();
  FHP_COUNTER_ADD("alg1/boundary_nodes",
                  static_cast<long long>(boundary.size()));
  FHP_GAUGE_SET("alg1/boundary_size", boundary.size());

  std::vector<std::uint8_t>& forced = scratch.forced;
  forced.assign(h.num_vertices(), kFree);
  {
    FHP_TRACE_SCOPE("assemble");
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (v < filtered_.num_vertices() && filtered_.degree(v) > 0) {
        forced[v] = kPending;
      }
    }
    for (EdgeId e = 0; e < filtered_.num_edges(); ++e) {
      if (boundary.is_boundary[e]) continue;
      const std::uint8_t s = boundary.g_side[e];
      for (VertexId v : filtered_.pins(e)) {
        FHP_ASSERT(forced[v] == kPending || forced[v] == s,
                   "module forced to both sides by non-boundary nets");
        forced[v] = s;
      }
    }
  }

  // --- Step 4: complete the boundary partition.
  CompletionResult& completion = scratch.completion;
  switch (options_.completion) {
    case CompletionStrategy::kGreedy:
      complete_cut_greedy(boundary.boundary_graph, scratch.ws, completion);
      break;
    case CompletionStrategy::kExact:
      completion = complete_cut_exact(boundary.boundary_graph,
                                      boundary.boundary_side);
      break;
    case CompletionStrategy::kWeightedGreedy: {
      Weight initial[2] = {0, 0};
      for (VertexId v = 0; v < h.num_vertices(); ++v) {
        if (forced[v] == kSide0 || forced[v] == kSide1) {
          initial[forced[v]] += h.vertex_weight(v);
        }
      }
      // Weight a winner would pull over: its not-yet-forced pins. Pins
      // shared by several boundary nets are counted once per net — a
      // deliberate approximation of the engineer's rule (see header).
      std::vector<Weight>& node_weight = scratch.node_weight;
      node_weight.assign(boundary.size(), 0);
      for (VertexId b = 0; b < boundary.size(); ++b) {
        const EdgeId e = boundary.boundary_nodes[b];
        for (VertexId v : filtered_.pins(e)) {
          if (forced[v] == kPending) node_weight[b] += h.vertex_weight(v);
        }
      }
      complete_cut_weighted(boundary.boundary_graph, boundary.boundary_side,
                            node_weight, initial[0], initial[1], scratch.ws,
                            completion);
      break;
    }
  }
  result.winner_count = completion.winner_count;
  result.loser_count = completion.loser_count;
  FHP_COUNTER_ADD("alg1/completion_winners",
                  static_cast<long long>(completion.winner_count));
  FHP_COUNTER_ADD("alg1/completion_losers",
                  static_cast<long long>(completion.loser_count));

  // --- Step 5: assemble module sides. Winner nets force their pins.
  std::vector<std::uint8_t>& sides = result.sides;
  {
    FHP_TRACE_SCOPE("assemble");
    std::vector<VertexId>& unforced = scratch.unforced;
    unforced.clear();
    for (VertexId v = 0; v < h.num_vertices(); ++v) {
      if (forced[v] == kSide0 || forced[v] == kSide1) {
        sides[v] = forced[v];
        continue;
      }
      if (forced[v] == kFree) {
        unforced.push_back(v);
        continue;
      }
      // Pending: adopt the side of a winner net touching it, if any.
      std::uint8_t chosen = kPending;
      for (EdgeId e : filtered_.nets_of(v)) {
        const VertexId b = boundary.boundary_index[e];
        FHP_ASSERT(b != kInvalidVertex,
                   "pending module must only touch boundary nets");
        if (completion.winner[b]) {
          const std::uint8_t s = boundary.boundary_side[b];
          FHP_ASSERT(chosen == kPending || chosen == s,
                     "winners on both sides share a module");
          chosen = s;
        }
      }
      if (chosen == kPending) {
        // Touched only by loser nets: free to go wherever balance wants.
        if (options_.balance_free_vertices) {
          unforced.push_back(v);
        } else {
          sides[v] = boundary.g_side[filtered_.nets_of(v).front()];
        }
      } else {
        sides[v] = chosen;
      }
    }
    {
      std::vector<std::uint8_t>& is_unforced = scratch.is_unforced;
      is_unforced.assign(h.num_vertices(), 0);
      for (VertexId u : unforced) is_unforced[u] = 1;
      Weight weights[2] = {0, 0};
      for (VertexId v = 0; v < h.num_vertices(); ++v) {
        if (!is_unforced[v]) weights[sides[v]] += h.vertex_weight(v);
      }
      balance_assign(h, unforced, sides, weights, scratch.ws.order);
    }
    ensure_proper(h, sides);
  }

  {
    FHP_TRACE_SCOPE("score");
    result.metrics = compute_metrics(Bipartition(h, sides));
  }
  result.starts_run = 1;
  return result;
}

namespace {

/// Body of algorithm1(); split out so the caller can snapshot the tracer
/// after the root span has closed (an open span has no completed total).
Algorithm1Result algorithm1_impl(const Hypergraph& h,
                                 const Algorithm1Options& options) {
  const Algorithm1Context context(h, options);
  if (context.is_degenerate()) {
    Algorithm1Result result = context.run_degenerate();
    result.starts_run = 1;
    return result;
  }

  const VertexId n = context.intersection().num_vertices();
  Rng rng(options.seed);
  // Starts are a prefix of one seeded permutation, so that examining more
  // starts under the same seed can only extend — never replace — the set
  // already examined (a k-start run dominates a j-start run for j < k).
  std::vector<VertexId> starts(n);
  std::iota(starts.begin(), starts.end(), 0U);
  rng.shuffle(starts);
  if (static_cast<std::uint64_t>(options.num_starts) < n) {
    starts.resize(static_cast<std::size_t>(options.num_starts));
  }

  Algorithm1Result best;
  bool have_best = false;
  ThreadPool* pool = context.pool();
  const bool parallel =
      pool != nullptr && pool->thread_count() > 1 && starts.size() > 1;

  // One scratch bundle per execution lane (worker lanes 1..N-1 plus the
  // region caller as lane 0): the steady-state start loop then reuses warm
  // buffers instead of allocating per start. Workspace is intentionally
  // non-movable, hence the indirection.
  const std::size_t lanes =
      static_cast<std::size_t>(pool != nullptr ? pool->thread_count() : 1);
  std::vector<std::unique_ptr<Algorithm1Context::StartScratch>> scratch;
  scratch.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    scratch.push_back(std::make_unique<Algorithm1Context::StartScratch>());
  }
  // current_lane() is only a valid index into `scratch` INSIDE a region
  // of this call's own pool (where the caller is normalized to 0 and
  // workers are 1..N-1). On the serial paths the executing thread may be
  // a worker of an *outer* pool — e.g. the serving layer batching
  // independent partition calls across its lanes — whose lane id has
  // nothing to do with this scratch vector, so serial call sites must
  // index lane 0 explicitly.
  auto lane_scratch = [&]() -> Algorithm1Context::StartScratch& {
    return *scratch[static_cast<std::size_t>(ThreadPool::current_lane())];
  };

  if (options.memoize_starts && n >= 2) {
    // Memoized multi-start: distinct random starts frequently converge to
    // the same pseudo-diameter pair after the BFS sweeps, and everything
    // downstream of the pair is a pure function of it. Four phases keep
    // the run bit-identical to the unmemoized loop at any lane count:
    //   1. find every start's endpoint pair (parallel);
    //   2. dedup pairs by ORDERED (s, t) key, serially — the bidirectional
    //      cut's tie-breaking is orientation-sensitive, so (s, t) and
    //      (t, s) stay distinct keys;
    //   3. complete each unique pair once (parallel);
    //   4. reduce in start order, hits referencing their owner's result —
    //      with the strict better() this elects exactly the candidate the
    //      unmemoized loop would.
    std::vector<DiameterPair> pairs(starts.size());
    auto find_range = [&](std::size_t begin, std::size_t end,
                          Algorithm1Context::StartScratch& s) {
      for (std::size_t i = begin; i < end; ++i) {
        FHP_COUNTER_ADD("alg1/starts_examined", 1);
        FHP_HIST_SCOPE_US("alg1/pair_find_us");
        pairs[i] = context.find_pair(starts[i], s.ws);
      }
    };
    if (parallel) {
      FHP_COUNTER_ADD("alg1/parallel_start_batches", 1);
      pool->parallel_for(starts.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           find_range(begin, end, lane_scratch());
                         });
    } else {
      find_range(0, starts.size(), *scratch[0]);
    }

    std::vector<std::size_t> owner(starts.size());
    std::unordered_map<std::uint64_t, std::size_t> first_of;
    first_of.reserve(starts.size());
    long long hits = 0;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(pairs[i].s) << 32) |
          static_cast<std::uint64_t>(pairs[i].t);
      const auto [it, inserted] = first_of.try_emplace(key, i);
      owner[i] = it->second;
      if (!inserted) ++hits;
    }
    FHP_COUNTER_ADD("algorithm1/starts_memo_hits", hits);
    FHP_COUNTER_ADD("algorithm1/starts_memo_misses",
                    static_cast<long long>(starts.size()) - hits);

    std::vector<std::size_t> owners;
    owners.reserve(first_of.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
      if (owner[i] == i) owners.push_back(i);
    }
    std::vector<Algorithm1Result> completed(starts.size());
    auto complete_range = [&](std::size_t begin, std::size_t end,
                              Algorithm1Context::StartScratch& s) {
      for (std::size_t i = begin; i < end; ++i) {
        // Same histogram as the unmemoized per-start path: a memo run's
        // "starts" are the unique pairs it actually completes.
        FHP_HIST_SCOPE_US("alg1/start_latency_us");
        completed[owners[i]] = context.run_from_pair(pairs[owners[i]], s);
      }
    };
    if (parallel && owners.size() > 1) {
      pool->parallel_for(owners.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           complete_range(begin, end, lane_scratch());
                         });
    } else {
      complete_range(0, owners.size(), *scratch[0]);
    }

    for (std::size_t i = 0; i < starts.size(); ++i) {
      const Algorithm1Result& candidate = completed[owner[i]];
      if (!have_best || better(candidate, best, options.objective)) {
        best = candidate;
        have_best = true;
      }
    }
  } else if (parallel) {
    // Each start is deterministic given its G-vertex, so the only way
    // thread count could leak into the answer is reduction order — and the
    // reduction below walks candidates in start order, exactly like the
    // serial loop, so ties resolve identically at any lane count.
    FHP_COUNTER_ADD("alg1/parallel_start_batches", 1);
    std::vector<Algorithm1Result> candidates =
        pool->parallel_map<Algorithm1Result>(starts.size(), [&](std::size_t i) {
          return context.run_single(starts[i], lane_scratch());
        });
    for (Algorithm1Result& candidate : candidates) {
      if (!have_best || better(candidate, best, options.objective)) {
        best = std::move(candidate);
        have_best = true;
      }
    }
  } else {
    for (VertexId start : starts) {
      Algorithm1Result candidate = context.run_single(start, *scratch[0]);
      if (!have_best || better(candidate, best, options.objective)) {
        best = std::move(candidate);
        have_best = true;
      }
    }
  }
  FHP_ASSERT(have_best, "at least one start must run");

  // Workspace accounting for the whole multi-start run: the per-lane
  // steady state grows each buffer once, so this total stays a small
  // multiple of the lane count however many starts executed.
  std::size_t ws_grows = 0;
  std::size_t ws_bytes = 0;
  for (const auto& s : scratch) {
    ws_grows += s->ws.grow_events();
    ws_bytes += s->ws.allocated_bytes();
  }
  FHP_COUNTER_ADD("workspace/buffer_grows", static_cast<long long>(ws_grows));
  FHP_GAUGE_SET("alg1/scratch_bytes", static_cast<double>(ws_bytes));

  // Optional extra candidate: when some modules sit on no (surviving)
  // net, the cut "all netted modules | floating modules" loses no
  // filtered net at all — the analogue of the c = 0 shortcut with a
  // connected G. It can be arbitrarily unbalanced, so it only competes
  // when explicitly requested.
  if (options.consider_floating_split) {
    Algorithm1Result floating = context.run_floating_split();
    if (floating.metrics.proper &&
        better(floating, best, options.objective)) {
      best = std::move(floating);
    }
  }

  best.starts_run = static_cast<int>(starts.size());
  return best;
}

}  // namespace

Algorithm1Result algorithm1(const Hypergraph& h,
                            const Algorithm1Options& options) {
  FHP_REQUIRE(options.num_starts >= 1, "need at least one start");
  Algorithm1Result result;
  {
    FHP_TRACE_SCOPE("algorithm1");
    FHP_COUNTER_ADD("alg1/runs", 1);
    result = algorithm1_impl(h, options);
  }
  if (options.collect_trace) result.trace = obs::snapshot();
  return result;
}

}  // namespace fhp

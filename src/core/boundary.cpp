#include "core/boundary.hpp"

#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fhp {

void extract_boundary(const Graph& g, std::span<const std::uint8_t> g_side,
                      Workspace& ws, BoundaryStructure& out) {
  FHP_TRACE_SCOPE("boundary");
  FHP_COUNTER_ADD("boundary/extractions", 1);
  FHP_REQUIRE(g_side.size() == g.num_vertices(),
              "one side label per G-vertex expected");
  for (std::uint8_t s : g_side) {
    FHP_REQUIRE(s == 0 || s == 1, "G-vertex sides must be 0/1");
  }

  ws.ensure_capacity(out.g_side, g.num_vertices());
  out.g_side.assign(g_side.begin(), g_side.end());
  ws.ensure_capacity(out.is_boundary, g.num_vertices());
  out.is_boundary.assign(g.num_vertices(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId w : g.neighbors(u)) {
      if (out.g_side[w] != out.g_side[u]) {
        out.is_boundary[u] = 1;
        break;
      }
    }
  }

  ws.ensure_capacity(out.boundary_index, g.num_vertices());
  out.boundary_index.assign(g.num_vertices(), kInvalidVertex);
  out.boundary_nodes.clear();
  out.boundary_side.clear();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (out.is_boundary[u]) {
      out.boundary_index[u] = static_cast<VertexId>(out.boundary_nodes.size());
      out.boundary_nodes.push_back(u);
      out.boundary_side.push_back(out.g_side[u]);
    }
  }

  // Cross edges come out normalized, sorted and unique by construction:
  // boundary_index is monotone in the G-vertex id, u ascends in the outer
  // loop and neighbors(u) is sorted — so the sorted-unique CSR fast path
  // applies and the graph matches GraphBuilder's output bit for bit.
  ws.pairs.clear();
  for (VertexId u : out.boundary_nodes) {
    for (VertexId w : g.neighbors(u)) {
      if (!out.is_boundary[w] || out.g_side[w] == out.g_side[u]) continue;
      if (w > u) {  // emit each cross edge once
        ws.pairs.emplace_back(out.boundary_index[u], out.boundary_index[w]);
      }
    }
  }
  out.boundary_graph = Graph::from_sorted_unique_edges(
      static_cast<VertexId>(out.boundary_nodes.size()), ws.pairs);
}

BoundaryStructure extract_boundary(const Graph& g,
                                   std::vector<std::uint8_t> g_side) {
  Workspace ws;
  BoundaryStructure b;
  extract_boundary(g, std::span<const std::uint8_t>(g_side), ws, b);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return b;
}

}  // namespace fhp

#include "core/boundary.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fhp {

BoundaryStructure extract_boundary(const Graph& g,
                                   std::vector<std::uint8_t> g_side) {
  FHP_TRACE_SCOPE("boundary");
  FHP_COUNTER_ADD("boundary/extractions", 1);
  FHP_REQUIRE(g_side.size() == g.num_vertices(),
              "one side label per G-vertex expected");
  for (std::uint8_t s : g_side) {
    FHP_REQUIRE(s == 0 || s == 1, "G-vertex sides must be 0/1");
  }

  BoundaryStructure b;
  b.g_side = std::move(g_side);
  b.is_boundary.assign(g.num_vertices(), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId w : g.neighbors(u)) {
      if (b.g_side[w] != b.g_side[u]) {
        b.is_boundary[u] = 1;
        break;
      }
    }
  }

  b.boundary_index.assign(g.num_vertices(), kInvalidVertex);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (b.is_boundary[u]) {
      b.boundary_index[u] = static_cast<VertexId>(b.boundary_nodes.size());
      b.boundary_nodes.push_back(u);
      b.boundary_side.push_back(b.g_side[u]);
    }
  }

  GraphBuilder builder(static_cast<VertexId>(b.boundary_nodes.size()));
  for (VertexId u : b.boundary_nodes) {
    for (VertexId w : g.neighbors(u)) {
      if (!b.is_boundary[w] || b.g_side[w] == b.g_side[u]) continue;
      if (w > u) {  // emit each cross edge once
        builder.add_edge(b.boundary_index[u], b.boundary_index[w]);
      }
    }
  }
  b.boundary_graph = std::move(builder).build();
  return b;
}

}  // namespace fhp

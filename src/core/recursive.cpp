#include "core/recursive.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "hypergraph/transform.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fhp {

namespace {

/// Cut-weight change of moving \p v to the other side (the classic cell
/// gain; positive = moving uncuts more weight than it cuts).
Weight move_gain(const Bipartition& p, VertexId v) {
  const Hypergraph& h = p.hypergraph();
  const std::uint8_t s = p.side(v);
  Weight gain = 0;
  for (EdgeId e : h.nets_of(v)) {
    if (p.pins_on_side(e, s) == 1) gain += h.edge_weight(e);
    if (p.pins_on_side(e, static_cast<std::uint8_t>(1 - s)) == 0) {
      gain -= h.edge_weight(e);
    }
  }
  return gain;
}

}  // namespace

void rebalance_bipartition(Bipartition& p, double target_frac0,
                           double tolerance) {
  const Hypergraph& h = p.hypergraph();
  const VertexId n = h.num_vertices();
  const auto total = static_cast<double>(h.total_vertex_weight());
  if (total <= 0) return;
  const double target0 = target_frac0 * total;
  const double tol_abs = std::max(1.0, tolerance * total);

  double dev0 = static_cast<double>(p.weight(0)) - target0;
  if (std::abs(dev0) <= tol_abs) return;

  // Gains for every module, one O(pins) sweep up front and kept current
  // incrementally: a flip only changes the gains of modules sharing a
  // net with the flipped one, so per-move work is O(deg · log n) instead
  // of the full-rescan O(n · pins) the legacy loop paid.
  std::vector<Weight> gain(n);
  for (VertexId v = 0; v < n; ++v) gain[v] = move_gain(p, v);

  // Per-side lazy max-heaps of (gain, id) snapshots. A popped snapshot is
  // live only if the module is still on that side with that gain;
  // anything else was superseded by a later push. Ordering reproduces the
  // legacy scan exactly: highest gain wins, lowest id on ties.
  using Entry = std::pair<Weight, VertexId>;
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, EntryLess>;
  Heap heaps[2];
  for (VertexId v = 0; v < n; ++v) heaps[p.side(v)].emplace(gain[v], v);

  std::vector<VertexId> touched;
  std::vector<std::uint8_t> touched_mark(n, 0);
  for (VertexId guard = 0; guard < n && std::abs(dev0) > tol_abs; ++guard) {
    const std::uint8_t heavy = dev0 > 0 ? 0 : 1;
    const double limit = 2.0 * std::abs(dev0);

    VertexId best = kInvalidVertex;
    Heap& heap = heaps[heavy];
    while (!heap.empty()) {
      const auto [g, v] = heap.top();
      heap.pop();
      if (p.side(v) != heavy || g != gain[v]) continue;  // stale snapshot
      if (static_cast<double>(h.vertex_weight(v)) >= limit) {
        // Would overshoot past the target. |dev0| never grows, so the
        // limit only shrinks: inadmissible now means inadmissible for
        // the rest of the run — dropping the snapshot is safe.
        continue;
      }
      best = v;
      break;
    }
    if (best == kInvalidVertex) break;

    p.flip(best);
    dev0 = static_cast<double>(p.weight(0)) - target0;
    gain[best] = move_gain(p, best);
    heaps[1 - heavy].emplace(gain[best], best);

    // Refresh the gains the flip invalidated: exactly the modules
    // sharing a net with `best` (deduplicated via the scratch mark).
    touched.clear();
    for (EdgeId e : h.nets_of(best)) {
      for (VertexId u : h.pins(e)) {
        if (u == best || touched_mark[u]) continue;
        touched_mark[u] = 1;
        touched.push_back(u);
      }
    }
    for (VertexId u : touched) {
      touched_mark[u] = 0;
      const Weight g = move_gain(p, u);
      if (g != gain[u]) {
        gain[u] = g;
        heaps[p.side(u)].emplace(g, u);
      }
    }
  }
}

namespace {

/// Recursively assigns parts [first_part, first_part + k) to the modules
/// listed in `vertices` (ids of the original hypergraph).
void recurse(const Hypergraph& h, const std::vector<VertexId>& vertices,
             std::uint32_t k, std::uint32_t first_part,
             const RecursiveOptions& options, std::uint64_t path_seed,
             std::vector<std::uint32_t>& part) {
  if (k <= 1 || vertices.size() <= 1) {
    for (VertexId v : vertices) part[v] = first_part;
    return;
  }

  // Build the sub-netlist induced by this block.
  std::vector<std::uint8_t> keep(h.num_vertices(), 0);
  for (VertexId v : vertices) keep[v] = 1;
  const InducedResult sub = induced_subhypergraph(h, keep);

  // Split k proportionally: left gets floor(k/2) parts.
  const std::uint32_t k_left = k / 2;
  const std::uint32_t k_right = k - k_left;

  Algorithm1Options sub_options = options.algorithm1;
  sub_options.seed = path_seed;
  std::vector<std::uint8_t> sides;
  if (sub.hypergraph.num_vertices() >= 2) {
    const Algorithm1Result result = algorithm1(sub.hypergraph, sub_options);
    sides = result.sides;
    if (options.rebalance) {
      Bipartition p(sub.hypergraph, std::move(sides));
      rebalance_bipartition(
          p, static_cast<double>(k_left) / static_cast<double>(k),
          options.balance_tolerance / 2.0);
      sides = p.sides();
    }
  } else {
    sides.assign(sub.hypergraph.num_vertices(), 0);
  }

  std::vector<VertexId> left;
  std::vector<VertexId> right;
  for (VertexId u = 0; u < sub.hypergraph.num_vertices(); ++u) {
    const VertexId original = sub.kept_vertices[u];
    if (sides[u] == 0) {
      left.push_back(original);
    } else {
      right.push_back(original);
    }
  }
  std::uint64_t sm = path_seed;
  recurse(h, left, k_left, first_part, options, splitmix64(sm), part);
  recurse(h, right, k_right, first_part + k_left, options, splitmix64(sm),
          part);
}

}  // namespace

KWayResult recursive_partition(const Hypergraph& h, std::uint32_t k,
                               const Algorithm1Options& options) {
  RecursiveOptions recursive;
  recursive.algorithm1 = options;
  return recursive_partition(h, k, recursive);
}

KWayResult recursive_partition(const Hypergraph& h, std::uint32_t k,
                               const RecursiveOptions& options) {
  FHP_REQUIRE(k >= 1, "need at least one part");
  FHP_REQUIRE(k <= h.num_vertices(), "more parts than modules");
  KWayResult result;
  result.part.assign(h.num_vertices(), 0);

  std::vector<VertexId> all(h.num_vertices());
  for (VertexId v = 0; v < h.num_vertices(); ++v) all[v] = v;
  recurse(h, all, k, 0, options, options.algorithm1.seed, result.part);

  result.cut_edges = kway_cut_edges(h, result.part);
  std::vector<Weight> weights(k, 0);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    weights[result.part[v]] += h.vertex_weight(v);
  }
  result.max_part_weight = *std::max_element(weights.begin(), weights.end());
  result.min_part_weight = *std::min_element(weights.begin(), weights.end());
  return result;
}

EdgeId kway_cut_edges(const Hypergraph& h,
                      const std::vector<std::uint32_t>& part) {
  FHP_REQUIRE(part.size() == h.num_vertices(), "one part id per module");
  EdgeId cut = 0;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const auto pins = h.pins(e);
    if (pins.empty()) continue;
    const std::uint32_t first = part[pins.front()];
    for (VertexId v : pins) {
      if (part[v] != first) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

}  // namespace fhp

/// \file intersection.hpp
/// Construction of the intersection graph G dual to a netlist hypergraph H
/// (paper §2): one G-vertex per net of H, two G-vertices adjacent iff the
/// nets share a module. G-vertex i corresponds to edge i of H.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/parallel.hpp"

namespace fhp {

/// Tuning knobs for intersection_graph().
struct IntersectionOptions {
  /// Nets with more than this many pins are skipped before pair
  /// enumeration (their G-vertices stay isolated) — the paper's large-net
  /// relaxation applied in-place, without materializing a filtered
  /// hypergraph. 0 disables the filter (every net participates).
  std::uint32_t large_edge_threshold = 0;
  /// Optional pool for the sharded parallel build: module ranges are
  /// enumerated into per-chunk edge shards, chunk-locally deduplicated,
  /// then merged and canonicalized globally — so the resulting CSR is
  /// bit-identical at any lane count. Null (or a 1-lane pool) runs the
  /// build serially.
  ThreadPool* pool = nullptr;
};

/// Builds the intersection graph of \p h. Cost is O(sum over modules of
/// degree^2) plus a sort — for bounded module degree (the regime the paper
/// analyses and the reason for its large-net filter) this is O(pins).
[[nodiscard]] Graph intersection_graph(const Hypergraph& h,
                                       const IntersectionOptions& options);

/// Serial build with no net-size filter (historical entry point).
[[nodiscard]] Graph intersection_graph(const Hypergraph& h);

}  // namespace fhp

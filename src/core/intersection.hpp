/// \file intersection.hpp
/// Construction of the intersection graph G dual to a netlist hypergraph H
/// (paper §2): one G-vertex per net of H, two G-vertices adjacent iff the
/// nets share a module. G-vertex i corresponds to edge i of H.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/parallel.hpp"

namespace fhp {

/// Tuning knobs for intersection_graph().
struct IntersectionOptions {
  /// Nets with more than this many pins are skipped before pair
  /// enumeration (their G-vertices stay isolated) — the paper's large-net
  /// relaxation applied in-place, without materializing a filtered
  /// hypergraph. 0 disables the filter (every net participates).
  std::uint32_t large_edge_threshold = 0;
  /// Optional pool for the sharded parallel build: module ranges are
  /// enumerated into per-chunk edge shards, chunk-locally deduplicated,
  /// then merged and canonicalized globally — so the resulting CSR is
  /// bit-identical at any lane count. Null (or a 1-lane pool) runs the
  /// build serially.
  ThreadPool* pool = nullptr;
};

/// Builds the intersection graph of \p h with the two-pass counting
/// construction: per-net degree counting (64-bit dedup stamps, one marker
/// array per lane), a prefix sum into CSR offsets, then a fill pass with a
/// per-row sort only. Cost is O(sum over modules of degree^2) — for
/// bounded module degree (the regime the paper analyses and the reason for
/// its large-net filter) this is O(pins) — with no candidate-pair
/// materialization and no global sort. The CSR is bit-identical to
/// intersection_graph_reference() at any lane count (test-enforced).
[[nodiscard]] Graph intersection_graph(const Hypergraph& h,
                                       const IntersectionOptions& options);

/// Serial build with no net-size filter (historical entry point).
[[nodiscard]] Graph intersection_graph(const Hypergraph& h);

/// Reference builder (the pre-optimization pipeline): emit every candidate
/// pair per module, shard-locally dedup, globally sort + unique, then
/// assemble the CSR. Kept as the differential-testing oracle for the
/// counting build and as the baseline leg of bench_hotpath; its output is
/// bit-identical to intersection_graph() by construction and by test.
[[nodiscard]] Graph intersection_graph_reference(
    const Hypergraph& h, const IntersectionOptions& options = {});

}  // namespace fhp

/// \file intersection.hpp
/// Construction of the intersection graph G dual to a netlist hypergraph H
/// (paper §2): one G-vertex per net of H, two G-vertices adjacent iff the
/// nets share a module. G-vertex i corresponds to edge i of H.
#pragma once

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Builds the intersection graph of \p h. Cost is O(sum over modules of
/// degree^2) plus a sort — for bounded module degree (the regime the paper
/// analyses and the reason for its large-net filter) this is O(pins).
[[nodiscard]] Graph intersection_graph(const Hypergraph& h);

}  // namespace fhp

/// \file recursive.hpp
/// Recursive multi-way partitioning on top of Algorithm I.
///
/// Min-cut *placement* (Breuer's motivation in the paper's introduction)
/// repeatedly bisects the netlist to assign modules to layout regions.
/// This module provides the k-way driver: split the target part count
/// proportionally, bisect with Algorithm I, recurse on each induced
/// sub-netlist.
#pragma once

#include <cstdint>
#include <vector>

#include "core/algorithm1.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fhp {

/// Result of a k-way recursive partition.
struct KWayResult {
  std::vector<std::uint32_t> part;  ///< part id in [0, k) per module
  EdgeId cut_edges = 0;   ///< nets spanning more than one part
  Weight max_part_weight = 0;
  Weight min_part_weight = 0;
};

/// Knobs of the recursive driver.
struct RecursiveOptions {
  /// Per-bisection Algorithm I configuration (seed is re-derived from the
  /// recursion path).
  Algorithm1Options algorithm1;
  /// Rebalance each bisection toward the sub-block's target split with a
  /// gain-aware pass before recursing. Placement flows want this on: raw
  /// Algorithm I optimizes the cut and only softly tracks balance, which
  /// compounds across recursion levels.
  bool rebalance = false;
  /// Allowed relative weight deviation per bisection when rebalancing
  /// (0.1 = each side within 10% of its target share).
  double balance_tolerance = 0.1;
};

/// Partitions \p h into \p k parts by recursive bisection with Algorithm I
/// under \p options (the per-bisection seed is derived from options.seed
/// and the recursion path, so results are deterministic).
/// Requires 1 <= k <= num_vertices.
[[nodiscard]] KWayResult recursive_partition(const Hypergraph& h,
                                             std::uint32_t k,
                                             const Algorithm1Options& options = {});

/// Full-control overload.
[[nodiscard]] KWayResult recursive_partition(const Hypergraph& h,
                                             std::uint32_t k,
                                             const RecursiveOptions& options);

/// Number of nets of \p h spanning >= 2 distinct parts under \p part.
[[nodiscard]] EdgeId kway_cut_edges(const Hypergraph& h,
                                    const std::vector<std::uint32_t>& part);

/// Greedily moves best-gain modules from the overweight side of \p p
/// until side 0's weight is within `tolerance * total` of
/// `target_frac0 * total`. Every move never grows the deviation (and
/// strictly shrinks it for positive-weight modules). Candidates are kept
/// in per-side lazy max-heaps with incrementally maintained gains — one
/// O(pins) gain sweep up front, then O(deg · log n) per move instead of
/// the legacy full O(n · pins) rescan per move — selecting exactly the
/// module the legacy scan did (highest gain, lowest id on ties).
/// Used by the recursive driver, the corridor flow refiner's balance
/// recovery, and the placement flow.
void rebalance_bipartition(Bipartition& p, double target_frac0,
                           double tolerance);

}  // namespace fhp

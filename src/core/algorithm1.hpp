/// \file algorithm1.hpp
/// Algorithm I — the paper's O(n²) hypergraph min-cut bipartitioner.
///
/// Pipeline per start (paper §2 "The Basic Algorithm"):
///   1. optionally drop nets larger than a threshold (§3);
///   2. build the intersection graph G;
///   3. find a pseudo-diameter pair by random longest BFS path;
///   4. grow BFS regions from both endpoints to cut G;
///   5. extract the boundary set/graph and the induced partial bipartition;
///   6. complete the partition with Complete-Cut (greedy / weighted / exact);
///   7. map back to a module-side assignment and score on the *original*
///      hypergraph (filtered large nets still count if they cross).
///
/// The multi-start extension (§4 "Extensions": "examined 50 random longest
/// paths and selected the best result") reuses G across starts. If G is
/// disconnected (the paper's pathological c = 0 case), the connected
/// blocks are packed onto two sides directly, yielding a zero cut on the
/// filtered instance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/boundary.hpp"
#include "core/complete_cut.hpp"
#include "graph/bfs.hpp"
#include "graph/reorder.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/report.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace fhp {

/// Objective used to pick the best result across starts.
enum class Objective {
  kCutsize,   ///< minimize cut nets, tie-break on weight imbalance
  kQuotient,  ///< minimize cut / (|V_L| * |V_R|) (paper §1, [20])
};

/// How the initial graph cut of G is generated from the pseudo-diameter
/// endpoints (paper §2 uses the bidirectional BFS; the level sweep is one
/// of the §4 "alternative greedy methods" ablations).
enum class InitialCutStrategy {
  /// Grow BFS regions from both endpoints until they meet (the paper's
  /// "BFS from two distant nodes ... to define a cutline").
  kBidirectionalBfs,
  /// BFS from one endpoint only; try *every* level-prefix cut and keep
  /// the best completed result. More thorough, costs a factor of the BFS
  /// depth per start.
  kLevelSweep,
};

/// Tuning knobs of Algorithm I. Defaults reproduce the paper's reported
/// configuration (50 random longest paths, greedy completion, net-size
/// threshold 10).
struct Algorithm1Options {
  /// Nets with more pins than this are ignored while partitioning (they
  /// still count in the reported cut). 0 disables the filter. Paper §3:
  /// "a size threshold as low as k >= 10 [has] very small expected error".
  std::uint32_t large_edge_threshold = 10;
  /// Number of random longest-path starts examined; the best completion
  /// wins. Paper §4 used 50.
  int num_starts = 50;
  /// BFS sweeps when hunting for a pseudo-diameter endpoint pair
  /// (1 = the paper's single "longest BFS path", 2 = double sweep).
  int bfs_sweeps = 2;
  /// Boundary completion strategy.
  CompletionStrategy completion = CompletionStrategy::kGreedy;
  /// How the initial cut of G is produced per start.
  InitialCutStrategy initial_cut = InitialCutStrategy::kBidirectionalBfs;
  /// Selection objective across starts.
  Objective objective = Objective::kCutsize;
  /// Assign modules not forced by any net (isolated, or touched only by
  /// loser nets) to the lighter side. Disable to study the raw heuristic.
  bool balance_free_vertices = true;
  /// Also consider the "floating split" candidate — modules on no
  /// surviving net versus everything else — which cuts zero filtered nets
  /// but can be arbitrarily unbalanced. Off by default (the published
  /// Algorithm I never inspects it); turn on when hunting the absolute
  /// minimum proper cut.
  bool consider_floating_split = false;
  /// Memoize completed starts by their pseudo-diameter endpoint pair:
  /// distinct random starts frequently converge to the same (s, t) after
  /// the BFS sweeps, and everything downstream of the pair is a pure
  /// function of it, so repeat pairs reuse the completed result instead of
  /// recomputing it. Bit-identical to the unmemoized run at any thread
  /// count (hits are counted deterministically; see docs/performance.md).
  /// Off = recompute every start (the pre-memoization behavior, kept for
  /// differential benching/testing).
  bool memoize_starts = true;
  /// Relabel the intersection graph for cache locality before the starts
  /// run (graph/reorder.hpp, RCM-lite ordering): the BFS-heavy steps 1-2
  /// then traverse nearly-sequential memory instead of hopping across a
  /// CSR laid out in net-numbering order. The initial cut is mapped back
  /// through the inverse permutation before boundary extraction, and
  /// `farthest` tie-breaks compare original net ids, so the partition —
  /// not merely the cutsize — is bit-identical with reorder on or off at
  /// any thread count (gated by bench_hotpath and the reorder property
  /// test; see docs/performance.md). Off = traverse in input order.
  bool reorder = true;
  /// RNG seed; every run with the same seed and input is identical.
  std::uint64_t seed = 1;
  /// Execution lanes for the multi-start loop and the intersection-graph
  /// build: 1 = serial, N > 1 = a pool of N lanes, 0 = resolve from the
  /// FHP_THREADS environment variable (unset -> serial). The chosen
  /// partition is bit-identical at every setting: starts come from the
  /// same seeded permutation and results are reduced in start order, so
  /// threads only change wall time, never the answer (docs/parallelism.md).
  int threads = 0;
  /// Attach an observability snapshot (phase times + counters recorded
  /// since the last obs::reset()) to the result. Off by default: the
  /// snapshot copies the whole span tree, which multi-run harnesses that
  /// aggregate globally do not want per call.
  bool collect_trace = false;
};

/// Output of Algorithm I, with diagnostics for the experiment harness.
struct Algorithm1Result {
  std::vector<std::uint8_t> sides;  ///< side per module of the input
  PartitionMetrics metrics;         ///< scored on the original hypergraph
  // ---- diagnostics (about the best start) ----
  std::uint32_t pseudo_diameter = 0;   ///< d(s, t) of the chosen pair
  VertexId boundary_size = 0;          ///< |B|
  VertexId winner_count = 0;           ///< winners in the completion
  VertexId loser_count = 0;            ///< losers (upper bound on cut)
  EdgeId filtered_edges = 0;           ///< nets dropped by the threshold
  int starts_run = 0;                  ///< starts actually examined
  bool disconnected_shortcut = false;  ///< took the c = 0 fast path
  /// Observability snapshot (see Algorithm1Options::collect_trace); empty
  /// unless requested. Cumulative since the last obs::reset().
  obs::TraceReport trace;
};

/// Runs Algorithm I on \p h. Requires at least one vertex.
[[nodiscard]] Algorithm1Result algorithm1(const Hypergraph& h,
                                          const Algorithm1Options& options = {});

/// Precomputed state shared across starts; exposed so tests and benches
/// can run single deterministic starts.
class Algorithm1Context {
 public:
  /// Prepares the filtered hypergraph and its intersection graph.
  Algorithm1Context(const Hypergraph& h, const Algorithm1Options& options);

  /// The original hypergraph.
  [[nodiscard]] const Hypergraph& original() const noexcept { return *h_; }
  /// The filtered hypergraph actually partitioned.
  [[nodiscard]] const Hypergraph& filtered() const noexcept { return filtered_; }
  /// Intersection graph of the filtered hypergraph.
  [[nodiscard]] const Graph& intersection() const noexcept { return g_; }
  /// Nets dropped by the large-net filter.
  [[nodiscard]] EdgeId filtered_edge_count() const noexcept {
    return static_cast<EdgeId>(h_->num_edges() - filtered_.num_edges());
  }
  /// True iff the filtered intersection graph is disconnected or empty.
  [[nodiscard]] bool is_degenerate() const noexcept { return degenerate_; }
  /// True iff a non-identity locality permutation is in effect
  /// (Algorithm1Options::reorder on a non-degenerate instance).
  [[nodiscard]] bool reordered() const noexcept { return reordered_; }
  /// The locality permutation (identity-sized only when reordered()).
  [[nodiscard]] const Permutation& permutation() const noexcept {
    return perm_;
  }
  /// The graph the BFS steps actually traverse: the permuted intersection
  /// graph when reordered(), otherwise intersection() itself.
  [[nodiscard]] const Graph& traversal_graph() const noexcept {
    return reordered_ ? g_perm_ : g_;
  }

  /// Reusable per-start (per-lane) scratch: the Workspace substrate plus
  /// the structures the pipeline refills every start. One StartScratch per
  /// execution lane makes the steady-state hot loop allocation-free;
  /// contents never influence results (docs/performance.md).
  struct StartScratch {
    Workspace ws;
    BidirectionalCut cut;
    BoundaryStructure boundary;
    CompletionResult completion;
    std::vector<std::uint32_t> levels;      ///< level-sweep BFS distances
    std::vector<std::uint8_t> g_side;       ///< candidate G-cut sides
    std::vector<std::uint8_t> forced;       ///< per-module forced sides
    std::vector<VertexId> unforced;         ///< balance-assignable modules
    std::vector<std::uint8_t> is_unforced;  ///< membership bytes for above
    std::vector<Weight> node_weight;        ///< weighted-completion pulls
  };

  /// Runs one start from G-vertex \p start; returns the completed result.
  /// Precondition: !is_degenerate() and start < intersection().num_vertices().
  [[nodiscard]] Algorithm1Result run_single(VertexId start) const;

  /// Workspace-backed run_single: bit-identical result, scratch reused
  /// from \p scratch (the caller keeps one per lane across starts).
  [[nodiscard]] Algorithm1Result run_single(VertexId start,
                                            StartScratch& scratch) const;

  /// Steps 1-2 only: the pseudo-diameter endpoint pair of \p start's
  /// random longest BFS path. Everything downstream of the pair is a pure
  /// function of it — the memoization key (ordered: the bidirectional
  /// cut's tie-breaking is orientation-sensitive, so (s, t) and (t, s) are
  /// distinct keys). Precondition: !is_degenerate() and
  /// intersection().num_vertices() >= 2.
  [[nodiscard]] DiameterPair find_pair(VertexId start, Workspace& ws) const;

  /// Steps 3-7 for an endpoint pair produced by find_pair(): initial cut,
  /// boundary, completion, assembly, scoring.
  [[nodiscard]] Algorithm1Result run_from_pair(const DiameterPair& pair,
                                               StartScratch& scratch) const;

  /// Handles the degenerate cases (no usable nets, or disconnected G):
  /// packs connected blocks onto two sides by weight.
  [[nodiscard]] Algorithm1Result run_degenerate() const;

  /// Candidate that separates modules on no surviving net from the rest
  /// (cuts no filtered net at all). Returns an improper (rejectable)
  /// result when there are no floating modules.
  [[nodiscard]] Algorithm1Result run_floating_split() const;

  /// Steps 3-5 of the pipeline: given a 0/1 side per G-vertex, extract
  /// the boundary, complete it with the configured strategy, and assemble
  /// a full module partition. Exposed for experimentation with custom
  /// initial cuts.
  [[nodiscard]] Algorithm1Result complete_from_cut(
      std::vector<std::uint8_t> g_side) const;

  /// The context's thread pool, or null when the configuration is serial
  /// (Algorithm1Options::threads resolved to 1).
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }

  /// Deterministic per-start generator: the fork(start_index) child of a
  /// master seeded from options.seed. The contract (see Rng::fork): equal
  /// (seed, start_index) gives a bit-equal stream regardless of thread
  /// count or the order starts execute in. The current pipeline draws no
  /// randomness after the start permutation, so this exists as the
  /// substrate for future stochastic per-start steps (randomized
  /// tie-breaks, perturbation restarts).
  [[nodiscard]] Rng start_rng(std::uint64_t start_index) const noexcept {
    return Rng(options_.seed).fork(start_index);
  }

 private:
  /// Steps 3-5 body shared by complete_from_cut() and run_from_pair():
  /// boundary extraction, completion, and assembly on \p scratch.
  [[nodiscard]] Algorithm1Result complete_from_cut_impl(
      std::span<const std::uint8_t> g_side, StartScratch& scratch) const;

  const Hypergraph* h_;
  Algorithm1Options options_;
  std::unique_ptr<ThreadPool> pool_;
  Hypergraph filtered_;
  Graph g_;
  Permutation perm_;   ///< locality relabeling of g_ (when reordered_)
  Graph g_perm_;       ///< g_ relabeled by perm_ (when reordered_)
  bool reordered_ = false;
  bool degenerate_ = false;
  std::vector<VertexId> g_component_;  ///< component label per G-vertex
  VertexId g_component_count_ = 0;
};

}  // namespace fhp

#include "core/intersection.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

Graph intersection_graph(const Hypergraph& h) {
  FHP_TRACE_SCOPE("intersection");
  FHP_COUNTER_ADD("intersection/builds", 1);
  GraphBuilder builder(h.num_edges());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const auto nets = h.nets_of(v);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      for (std::size_t j = i + 1; j < nets.size(); ++j) {
        builder.add_edge(nets[i], nets[j]);
      }
    }
  }
  return std::move(builder).build();
}

}  // namespace fhp

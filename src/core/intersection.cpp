#include "core/intersection.hpp"

namespace fhp {

Graph intersection_graph(const Hypergraph& h) {
  GraphBuilder builder(h.num_edges());
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    const auto nets = h.nets_of(v);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      for (std::size_t j = i + 1; j < nets.size(); ++j) {
        builder.add_edge(nets[i], nets[j]);
      }
    }
  }
  return std::move(builder).build();
}

}  // namespace fhp

#include "core/intersection.hpp"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace fhp {

namespace {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

/// Marks nets above the size threshold (they never contribute pairs, so
/// their pins cost O(deg) instead of O(deg^2); skipped nets keep their
/// G-vertex, isolated). Empty result = no filter.
std::vector<char> mark_skipped(const Hypergraph& h,
                               const IntersectionOptions& options) {
  std::vector<char> skip;
  if (options.large_edge_threshold > 0) {
    skip.assign(h.num_edges(), 0);
    long long skipped = 0;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      if (h.edge_size(e) > options.large_edge_threshold) {
        skip[e] = 1;
        ++skipped;
      }
    }
    FHP_COUNTER_ADD("intersection/nets_skipped", skipped);
  }
  return skip;
}

/// The pair count the emit-all-pairs builder would materialize: one pair
/// per unordered kept-net couple per module. The counting build computes it
/// arithmetically in O(pins) so the "intersection/pairs_emitted" counter
/// keeps its historical meaning (and stays comparable to
/// "intersection/edges_after_dedup") without emitting anything.
long long count_raw_pairs(const Hypergraph& h, const std::vector<char>& skip) {
  long long pairs = 0;
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    long long kept = 0;
    if (skip.empty()) {
      kept = static_cast<long long>(h.nets_of(v).size());
    } else {
      for (const EdgeId e : h.nets_of(v)) {
        if (!skip[e]) ++kept;
      }
    }
    pairs += kept * (kept - 1) / 2;
  }
  return pairs;
}

/// Emits the normalized (min, max) net pairs of modules [begin, end) into
/// \p out and deduplicates the chunk locally (sort + unique). Returns the
/// raw pair count before deduplication, which depends only on the
/// hypergraph and the skip set — never on how the range was chunked.
/// \p kept is caller-owned scratch (hoisted so parallel shards reuse one
/// buffer per lane instead of reallocating per chunk invocation).
std::size_t emit_module_range(const Hypergraph& h,
                              const std::vector<char>& skip,
                              std::size_t begin, std::size_t end,
                              std::vector<EdgeId>& kept, EdgeList& out) {
  // Cheap upper bound on this range's emission — sum deg(deg-1)/2 over the
  // unfiltered module degrees — so the pair buffer grows at most once.
  std::size_t bound = 0;
  for (std::size_t v = begin; v < end; ++v) {
    const std::size_t deg = h.nets_of(static_cast<VertexId>(v)).size();
    bound += deg * (deg - 1) / 2;
  }
  out.reserve(out.size() + bound);

  std::size_t pairs = 0;
  for (std::size_t v = begin; v < end; ++v) {
    const auto nets = h.nets_of(static_cast<VertexId>(v));
    kept.clear();
    for (const EdgeId e : nets) {
      if (skip.empty() || !skip[e]) kept.push_back(e);
    }
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = i + 1; j < kept.size(); ++j) {
        const EdgeId a = kept[i];
        const EdgeId b = kept[j];
        out.emplace_back(std::min(a, b), std::max(a, b));
        ++pairs;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return pairs;
}

}  // namespace

Graph intersection_graph(const Hypergraph& h,
                         const IntersectionOptions& options) {
  FHP_TRACE_SCOPE("intersection");
  FHP_COUNTER_ADD("intersection/builds", 1);
  FHP_HIST_SCOPE_US("intersection/build_us");

  const std::vector<char> skip = mark_skipped(h, options);
  FHP_COUNTER_ADD("intersection/pairs_emitted", count_raw_pairs(h, skip));

  // Two-pass counting construction, O(sum over modules of degree^2) with
  // no pair materialization and no global sort: pass 1 counts each net's
  // distinct kept co-nets, a prefix sum turns counts into CSR offsets, and
  // pass 2 writes each row and sorts it locally. Rows are independent, so
  // the parallel path shards the net range; the resulting CSR is a pure
  // function of the hypergraph — bit-identical to the reference builder at
  // any lane count (test-enforced in test_intersection.cpp).
  const std::size_t m = h.num_edges();
  std::vector<std::size_t> offsets(m + 1, 0);

  const bool parallel =
      options.pool != nullptr && options.pool->thread_count() > 1 && m > 1;
  const int lanes = parallel ? options.pool->thread_count() : 1;

  // Per-lane dedup stamps: mark[f] == (pass << 33 | e + 1) means net f was
  // already recorded for net e in that pass. One 64-bit array per lane
  // replaces a per-net clear (or a hash set) — O(1) logical reset per net.
  // (e + 1 needs 33 bits at the EdgeId limit, hence the shift.)
  std::vector<std::vector<std::uint64_t>> lane_marks(
      static_cast<std::size_t>(lanes));
  auto marks_of_lane = [&]() -> std::vector<std::uint64_t>& {
    auto& marks = lane_marks[static_cast<std::size_t>(
        parallel ? ThreadPool::current_lane() : 0)];
    if (marks.size() < m) marks.assign(m, 0);
    return marks;
  };
  auto skipped = [&](EdgeId f) { return !skip.empty() && skip[f] != 0; };

  auto count_range = [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint64_t>& marks = marks_of_lane();
    for (std::size_t e = begin; e < end; ++e) {
      const auto eid = static_cast<EdgeId>(e);
      if (skipped(eid)) continue;  // isolated G-vertex, row stays empty
      const std::uint64_t stamp = (1ULL << 33) | (e + 1);
      std::size_t deg = 0;
      for (const VertexId v : h.pins(eid)) {
        for (const EdgeId f : h.nets_of(v)) {
          if (f == eid || skipped(f) || marks[f] == stamp) continue;
          marks[f] = stamp;
          ++deg;
        }
      }
      offsets[e + 1] = deg;
    }
  };

  const std::size_t grain = std::max<std::size_t>(std::size_t{64}, m / 256);
  if (parallel) {
    options.pool->parallel_for(m, grain, count_range);
  } else if (m > 0) {
    count_range(0, m);
  }

  for (std::size_t e = 0; e < m; ++e) offsets[e + 1] += offsets[e];
  std::vector<VertexId> adjacency(offsets[m]);

  auto fill_range = [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint64_t>& marks = marks_of_lane();
    for (std::size_t e = begin; e < end; ++e) {
      const auto eid = static_cast<EdgeId>(e);
      if (skipped(eid)) continue;
      const std::uint64_t stamp = (2ULL << 33) | (e + 1);
      std::size_t cursor = offsets[e];
      for (const VertexId v : h.pins(eid)) {
        for (const EdgeId f : h.nets_of(v)) {
          if (f == eid || skipped(f) || marks[f] == stamp) continue;
          marks[f] = stamp;
          adjacency[cursor++] = f;
        }
      }
      FHP_DEBUG_ASSERT(cursor == offsets[e + 1],
                       "fill pass must reproduce counted degrees");
      std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[e]),
                adjacency.begin() + static_cast<std::ptrdiff_t>(cursor));
    }
  };

  if (parallel) {
    options.pool->parallel_for(m, grain, fill_range);
  } else if (m > 0) {
    fill_range(0, m);
  }

  FHP_COUNTER_ADD("intersection/edges_after_dedup",
                  static_cast<long long>(adjacency.size() / 2));
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

Graph intersection_graph_reference(const Hypergraph& h,
                                   const IntersectionOptions& options) {
  FHP_TRACE_SCOPE("intersection");
  FHP_COUNTER_ADD("intersection/reference_builds", 1);

  const std::vector<char> skip = mark_skipped(h, options);

  const std::size_t n = h.num_vertices();
  EdgeList edges;
  const bool parallel =
      options.pool != nullptr && options.pool->thread_count() > 1 && n > 1;
  if (parallel) {
    // Chunk boundaries depend only on n, so the shard layout — and after
    // the global canonicalization below, the final CSR — is identical at
    // any lane count. The kept-net scratch is per lane, not per chunk.
    const std::size_t grain = std::max<std::size_t>(std::size_t{64}, n / 256);
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<EdgeList> shards(chunks);
    std::vector<std::vector<EdgeId>> lane_kept(
        static_cast<std::size_t>(options.pool->thread_count()));
    std::atomic<long long> pairs{0};
    options.pool->parallel_for(
        n, grain, [&](std::size_t begin, std::size_t end) {
          EdgeList& shard = shards[begin / grain];
          std::vector<EdgeId>& kept =
              lane_kept[static_cast<std::size_t>(ThreadPool::current_lane())];
          const std::size_t raw =
              emit_module_range(h, skip, begin, end, kept, shard);
          pairs.fetch_add(static_cast<long long>(raw),
                          std::memory_order_relaxed);
        });
    std::size_t total = 0;
    for (const EdgeList& shard : shards) total += shard.size();
    edges.reserve(total);
    for (EdgeList& shard : shards) {
      edges.insert(edges.end(), shard.begin(), shard.end());
      EdgeList().swap(shard);
    }
    const long long raw_pairs = pairs.load(std::memory_order_relaxed);
    FHP_COUNTER_ADD("intersection/pairs_emitted", raw_pairs);
    static_cast<void>(raw_pairs);
  } else {
    std::vector<EdgeId> kept;
    const std::size_t raw = emit_module_range(h, skip, 0, n, kept, edges);
    FHP_COUNTER_ADD("intersection/pairs_emitted",
                    static_cast<long long>(raw));
    static_cast<void>(raw);
  }

  // Global canonicalization: chunk-local dedup only thins the shards; this
  // pass makes the edge set — and therefore the CSR — independent of the
  // sharding entirely.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  const long long final_edges = static_cast<long long>(edges.size());
  FHP_COUNTER_ADD("intersection/edges_after_dedup", final_edges);
  static_cast<void>(final_edges);
  return Graph::from_sorted_unique_edges(h.num_edges(), edges);
}

Graph intersection_graph(const Hypergraph& h) {
  return intersection_graph(h, IntersectionOptions{});
}

}  // namespace fhp

#include "core/intersection.hpp"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace fhp {

namespace {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

/// Emits the normalized (min, max) net pairs of modules [begin, end) into
/// \p out and deduplicates the chunk locally (sort + unique). Returns the
/// raw pair count before deduplication, which depends only on the
/// hypergraph and the skip set — never on how the range was chunked.
std::size_t emit_module_range(const Hypergraph& h,
                              const std::vector<char>& skip,
                              std::size_t begin, std::size_t end,
                              EdgeList& out) {
  std::size_t pairs = 0;
  std::vector<EdgeId> kept;
  for (std::size_t v = begin; v < end; ++v) {
    const auto nets = h.nets_of(static_cast<VertexId>(v));
    kept.clear();
    for (const EdgeId e : nets) {
      if (skip.empty() || !skip[e]) kept.push_back(e);
    }
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = i + 1; j < kept.size(); ++j) {
        const EdgeId a = kept[i];
        const EdgeId b = kept[j];
        out.emplace_back(std::min(a, b), std::max(a, b));
        ++pairs;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return pairs;
}

}  // namespace

Graph intersection_graph(const Hypergraph& h,
                         const IntersectionOptions& options) {
  FHP_TRACE_SCOPE("intersection");
  FHP_COUNTER_ADD("intersection/builds", 1);

  // Mark skipped nets once, before any pair enumeration: a net above the
  // threshold never contributes pairs, so its pins cost O(deg) here rather
  // than O(deg^2) below. Skipped nets keep their G-vertex (isolated).
  std::vector<char> skip;
  if (options.large_edge_threshold > 0) {
    skip.assign(h.num_edges(), 0);
    long long skipped = 0;
    for (EdgeId e = 0; e < h.num_edges(); ++e) {
      if (h.edge_size(e) > options.large_edge_threshold) {
        skip[e] = 1;
        ++skipped;
      }
    }
    FHP_COUNTER_ADD("intersection/nets_skipped", skipped);
  }

  const std::size_t n = h.num_vertices();
  EdgeList edges;
  const bool parallel =
      options.pool != nullptr && options.pool->thread_count() > 1 && n > 1;
  if (parallel) {
    // Chunk boundaries depend only on n, so the shard layout — and after
    // the global canonicalization below, the final CSR — is identical at
    // any lane count.
    const std::size_t grain = std::max<std::size_t>(std::size_t{64}, n / 256);
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<EdgeList> shards(chunks);
    std::atomic<long long> pairs{0};
    options.pool->parallel_for(
        n, grain, [&](std::size_t begin, std::size_t end) {
          EdgeList& shard = shards[begin / grain];
          const std::size_t raw = emit_module_range(h, skip, begin, end, shard);
          pairs.fetch_add(static_cast<long long>(raw),
                          std::memory_order_relaxed);
        });
    std::size_t total = 0;
    for (const EdgeList& shard : shards) total += shard.size();
    edges.reserve(total);
    for (EdgeList& shard : shards) {
      edges.insert(edges.end(), shard.begin(), shard.end());
      EdgeList().swap(shard);
    }
    const long long raw_pairs = pairs.load(std::memory_order_relaxed);
    FHP_COUNTER_ADD("intersection/pairs_emitted", raw_pairs);
    static_cast<void>(raw_pairs);
  } else {
    const std::size_t raw = emit_module_range(h, skip, 0, n, edges);
    FHP_COUNTER_ADD("intersection/pairs_emitted",
                    static_cast<long long>(raw));
    static_cast<void>(raw);
  }

  // Global canonicalization: chunk-local dedup only thins the shards; this
  // pass makes the edge set — and therefore the CSR — independent of the
  // sharding entirely.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  const long long final_edges = static_cast<long long>(edges.size());
  FHP_COUNTER_ADD("intersection/edges_after_dedup", final_edges);
  static_cast<void>(final_edges);
  return Graph::from_sorted_unique_edges(h.num_edges(), edges);
}

Graph intersection_graph(const Hypergraph& h) {
  return intersection_graph(h, IntersectionOptions{});
}

}  // namespace fhp

/// \file boundary.hpp
/// Boundary extraction from a cut of the intersection graph (paper §2).
///
/// A cut of G splits G-vertices (= nets of H) into V_L / V_R. The
/// *boundary set* B is the set of G-vertices with a neighbor across the
/// cut; non-boundary G-vertices are nets whose modules are all forced to
/// one side (the *partial bipartition*). The *boundary graph* G' is the
/// subgraph induced by B keeping only edges between B_L and B_R — it is
/// bipartite by construction, which is what makes the optimal completion
/// tractable.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/workspace.hpp"

namespace fhp {

/// Boundary structure of a graph cut in the intersection graph.
struct BoundaryStructure {
  /// Input side of every G-vertex: 0 (V_L), 1 (V_R). (Vertices of other
  /// components must not appear; callers handle disconnected G upstream.)
  std::vector<std::uint8_t> g_side;
  /// is_boundary[g] = 1 iff G-vertex g has a neighbor on the other side.
  std::vector<std::uint8_t> is_boundary;
  /// G-vertex ids of the boundary set B, ascending.
  std::vector<VertexId> boundary_nodes;
  /// boundary_index[g] = index of g within boundary_nodes (kInvalidVertex
  /// for non-boundary vertices).
  std::vector<VertexId> boundary_index;
  /// The bipartite boundary graph G' over boundary indices (only edges
  /// between opposite sides are kept).
  Graph boundary_graph;
  /// Side (0/1) of each boundary index; a proper 2-coloring of G'.
  std::vector<std::uint8_t> boundary_side;

  /// Number of boundary nodes |B|.
  [[nodiscard]] VertexId size() const noexcept {
    return static_cast<VertexId>(boundary_nodes.size());
  }
};

/// Computes the boundary structure of cut \p g_side (one 0/1 entry per
/// G-vertex) on intersection graph \p g.
[[nodiscard]] BoundaryStructure extract_boundary(
    const Graph& g, std::vector<std::uint8_t> g_side);

/// Workspace-backed variant: refills \p out in place (its vectors keep
/// their capacity across calls, so a lane that reuses one BoundaryStructure
/// per start extracts boundaries allocation-free once warm) and stages the
/// boundary-graph edge list in `ws.pairs`. \p g_side is copied into
/// out.g_side. The resulting structure — including the boundary graph's
/// CSR — is bit-identical to the allocating overload's.
void extract_boundary(const Graph& g, std::span<const std::uint8_t> g_side,
                      Workspace& ws, BoundaryStructure& out);

}  // namespace fhp

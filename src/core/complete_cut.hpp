/// \file complete_cut.hpp
/// Completion of the partial bipartition over the boundary graph G'
/// (paper §2.2 "Partitioning the Boundary Set").
///
/// Every boundary net ends up a *winner* (uncut: all modules pulled to its
/// own side) or a *loser* (crosses the cut). Winners must form an
/// independent set of the bipartite G' (adjacent boundary nets share a
/// module, which cannot sit on both sides), so minimizing losers is a
/// minimum vertex cover problem. Three strategies are provided:
///
///  - kGreedy: the paper's Complete-Cut rule — repeatedly take the
///    minimum-degree remaining vertex as a winner, delete it and its
///    neighbors (losers). Within 1 of optimal when G' is connected
///    (within #components in general).
///  - kWeightedGreedy: the paper's "engineer's method" for weight-balanced
///    partitions — same rule, but the next winner is drawn from the side
///    currently lighter in module weight.
///  - kExact: minimum vertex cover via König / Hopcroft–Karp; winners are
///    the complementary maximum independent set. Polynomial and optimal;
///    used to verify the paper's within-1 theorem and as an ablation.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/workspace.hpp"

namespace fhp {

/// How to complete the boundary partition.
enum class CompletionStrategy {
  kGreedy,          ///< paper's Complete-Cut (min degree)
  kWeightedGreedy,  ///< engineer's rule: min degree on the lighter side
  kExact,           ///< König minimum vertex cover (optimal)
};

/// Winner/loser labelling of the boundary graph's vertices.
struct CompletionResult {
  std::vector<std::uint8_t> winner;  ///< 1 = winner, 0 = loser, per vertex
  VertexId winner_count = 0;
  VertexId loser_count = 0;
};

/// The paper's Complete-Cut greedy on boundary graph \p bg. Ties on degree
/// break toward the lowest vertex id (deterministic).
[[nodiscard]] CompletionResult complete_cut_greedy(const Graph& bg);

/// Workspace-backed Complete-Cut greedy: the bucketed min-degree queue
/// borrows `ws.degree` / `ws.buckets` and the liveness array borrows
/// `ws.flags`, so a warmed-up lane completes cuts allocation-free. \p out
/// is refilled in place (winner keeps its capacity). Results are
/// bit-identical to the allocating overload.
void complete_cut_greedy(const Graph& bg, Workspace& ws,
                         CompletionResult& out);

/// Weighted variant: \p side is the proper 2-coloring of \p bg,
/// \p node_weight[v] is the module weight a winner v would pull to its side
/// (the pins not already forced by the partial bipartition), and
/// \p initial_weight{0,1} are the side weights already forced. Each step
/// picks the minimum-degree remaining vertex on the lighter side (either
/// side when equal; falls back to the other side when one is exhausted).
[[nodiscard]] CompletionResult complete_cut_weighted(
    const Graph& bg, std::span<const std::uint8_t> side,
    std::span<const Weight> node_weight, Weight initial_weight0,
    Weight initial_weight1);

/// Workspace-backed engineer's rule; see complete_cut_greedy(ws) for the
/// buffer contract.
void complete_cut_weighted(const Graph& bg, std::span<const std::uint8_t> side,
                           std::span<const Weight> node_weight,
                           Weight initial_weight0, Weight initial_weight1,
                           Workspace& ws, CompletionResult& out);

/// Optimal completion: winners = maximum independent set of the bipartite
/// \p bg (König), losers = minimum vertex cover. \p side must be a proper
/// 2-coloring.
[[nodiscard]] CompletionResult complete_cut_exact(
    const Graph& bg, std::span<const std::uint8_t> side);

/// Checks that \p result is a valid completion of \p bg: every vertex
/// labelled, winners independent, and (maximality) every loser has a winner
/// neighbor or a loser label forced by one. Aborts on violation; for tests.
void validate_completion(const Graph& bg, const CompletionResult& result);

}  // namespace fhp

#include "core/complete_cut.hpp"

#include <algorithm>

#include "graph/matching.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fhp {

namespace {

/// Bucketed min-degree queue with lazy entries: vertices are (re)pushed
/// whenever their degree drops; stale entries are skipped at pop time.
/// Gives the O(V + E) overall bound for the greedy sweeps. Storage is
/// borrowed from the caller (a Workspace lane or per-call locals), so a
/// reused lane runs the queue allocation-free once its buffers are warm.
class MinDegreeQueue {
 public:
  MinDegreeQueue(const Graph& g, std::uint32_t max_degree,
                 std::vector<std::uint32_t>& degree_storage,
                 std::vector<std::vector<VertexId>>& bucket_storage)
      : degree_(degree_storage),
        buckets_(bucket_storage),
        bucket_count_(static_cast<std::size_t>(max_degree) + 1) {
    degree_.assign(g.num_vertices(), 0);
    if (buckets_.size() < bucket_count_) buckets_.resize(bucket_count_);
    for (auto& bucket : buckets_) bucket.clear();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      degree_[v] = g.degree(v);
      buckets_[degree_[v]].push_back(v);
    }
  }

  /// Current degree of v among alive vertices.
  [[nodiscard]] std::uint32_t degree(VertexId v) const { return degree_[v]; }

  /// Notes that one of v's neighbors died.
  void decrement(VertexId v) {
    FHP_DEBUG_ASSERT(degree_[v] > 0, "degree underflow");
    --degree_[v];
    buckets_[degree_[v]].push_back(v);
    min_degree_ = std::min<std::size_t>(min_degree_, degree_[v]);
  }

  /// Pops an alive vertex of minimum current degree that satisfies
  /// \p eligible; returns kInvalidVertex when none remains. Entries whose
  /// recorded degree is stale are discarded. \p alive must be the caller's
  /// liveness array.
  template <typename Eligible>
  VertexId pop_min(const std::vector<std::uint8_t>& alive,
                   Eligible&& eligible) {
    for (std::size_t d = min_degree_; d < bucket_count_; ++d) {
      auto& bucket = buckets_[d];
      std::size_t i = 0;
      while (i < bucket.size()) {
        const VertexId v = bucket[i];
        if (!alive[v] || degree_[v] != d) {
          bucket[i] = bucket.back();  // stale: drop
          bucket.pop_back();
          continue;
        }
        if (!eligible(v)) {
          ++i;
          continue;
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        // min_degree_ may only be advanced when nothing eligible was
        // skipped below d; conservatively keep it at d.
        min_degree_ = d;
        return v;
      }
    }
    return kInvalidVertex;
  }

  /// Resets the scan floor (needed when eligibility broadens, e.g. the
  /// lighter side changes in the weighted rule).
  void reset_floor() { min_degree_ = 0; }

 private:
  std::vector<std::uint32_t>& degree_;
  std::vector<std::vector<VertexId>>& buckets_;
  std::size_t bucket_count_;
  std::size_t min_degree_ = 0;
};

/// Marks \p v winner and its alive neighbors losers, updating queue
/// degrees of second-order neighbors.
void settle_winner(const Graph& bg, VertexId v, std::vector<std::uint8_t>& alive,
                   MinDegreeQueue& queue, CompletionResult& result) {
  result.winner[v] = 1;
  ++result.winner_count;
  alive[v] = 0;
  for (VertexId w : bg.neighbors(v)) {
    if (!alive[w]) continue;
    alive[w] = 0;  // loser
    ++result.loser_count;
    for (VertexId x : bg.neighbors(w)) {
      if (alive[x]) queue.decrement(x);
    }
  }
}

}  // namespace

void complete_cut_greedy(const Graph& bg, Workspace& ws,
                         CompletionResult& out) {
  FHP_TRACE_SCOPE("complete_cut");
  FHP_COUNTER_ADD("complete_cut/greedy_runs", 1);
  out.winner_count = 0;
  out.loser_count = 0;
  ws.ensure_capacity(out.winner, bg.num_vertices());
  out.winner.assign(bg.num_vertices(), 0);
  ws.ensure_capacity(ws.flags, bg.num_vertices());
  ws.flags.assign(bg.num_vertices(), 1);
  std::vector<std::uint8_t>& alive = ws.flags;
  ws.ensure_capacity(ws.degree, bg.num_vertices());
  MinDegreeQueue queue(bg, bg.max_degree(), ws.degree, ws.buckets);
  for (;;) {
    const VertexId v = queue.pop_min(alive, [](VertexId) { return true; });
    if (v == kInvalidVertex) break;
    settle_winner(bg, v, alive, queue, out);
  }
}

CompletionResult complete_cut_greedy(const Graph& bg) {
  Workspace ws;
  CompletionResult result;
  complete_cut_greedy(bg, ws, result);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return result;
}

void complete_cut_weighted(const Graph& bg, std::span<const std::uint8_t> side,
                           std::span<const Weight> node_weight,
                           Weight initial_weight0, Weight initial_weight1,
                           Workspace& ws, CompletionResult& out) {
  FHP_TRACE_SCOPE("complete_cut");
  FHP_COUNTER_ADD("complete_cut/weighted_runs", 1);
  FHP_REQUIRE(side.size() == bg.num_vertices(), "one side label per vertex");
  FHP_REQUIRE(node_weight.size() == bg.num_vertices(),
              "one weight per vertex");
  out.winner_count = 0;
  out.loser_count = 0;
  ws.ensure_capacity(out.winner, bg.num_vertices());
  out.winner.assign(bg.num_vertices(), 0);
  ws.ensure_capacity(ws.flags, bg.num_vertices());
  ws.flags.assign(bg.num_vertices(), 1);
  std::vector<std::uint8_t>& alive = ws.flags;
  ws.ensure_capacity(ws.degree, bg.num_vertices());
  MinDegreeQueue queue(bg, bg.max_degree(), ws.degree, ws.buckets);
  Weight weights[2] = {initial_weight0, initial_weight1};

  for (;;) {
    // Engineer's rule (§3): pull the next winner from the lighter side.
    const std::uint8_t preferred = (weights[0] <= weights[1]) ? 0 : 1;
    VertexId v = queue.pop_min(
        alive, [&](VertexId u) { return side[u] == preferred; });
    if (v == kInvalidVertex) {
      queue.reset_floor();
      v = queue.pop_min(alive, [](VertexId) { return true; });
    }
    if (v == kInvalidVertex) break;
    weights[side[v]] += node_weight[v];
    settle_winner(bg, v, alive, queue, out);
    queue.reset_floor();  // eligibility may flip sides next round
  }
}

CompletionResult complete_cut_weighted(const Graph& bg,
                                       std::span<const std::uint8_t> side,
                                       std::span<const Weight> node_weight,
                                       Weight initial_weight0,
                                       Weight initial_weight1) {
  Workspace ws;
  CompletionResult result;
  complete_cut_weighted(bg, side, node_weight, initial_weight0,
                        initial_weight1, ws, result);
  FHP_COUNTER_ADD("workspace/buffer_grows",
                  static_cast<long long>(ws.grow_events()));
  return result;
}

CompletionResult complete_cut_exact(const Graph& bg,
                                    std::span<const std::uint8_t> side) {
  FHP_TRACE_SCOPE("complete_cut");
  FHP_COUNTER_ADD("complete_cut/exact_runs", 1);
  const std::vector<std::uint8_t> side_vec(side.begin(), side.end());
  const MatchingResult matching = max_bipartite_matching(bg, side_vec);
  const std::vector<std::uint8_t> cover =
      minimum_vertex_cover(bg, side_vec, matching);
  CompletionResult result;
  result.winner.assign(bg.num_vertices(), 0);
  for (VertexId v = 0; v < bg.num_vertices(); ++v) {
    if (cover[v]) {
      ++result.loser_count;
    } else {
      result.winner[v] = 1;
      ++result.winner_count;
    }
  }
  return result;
}

void validate_completion(const Graph& bg, const CompletionResult& result) {
  FHP_ASSERT(result.winner.size() == bg.num_vertices(),
             "completion must label every boundary vertex");
  VertexId winners = 0;
  VertexId losers = 0;
  for (VertexId v = 0; v < bg.num_vertices(); ++v) {
    if (result.winner[v]) {
      ++winners;
      for (VertexId w : bg.neighbors(v)) {
        FHP_ASSERT(!result.winner[w],
                   "adjacent boundary nets cannot both be winners");
      }
    } else {
      ++losers;
      bool has_winner_neighbor = bg.degree(v) == 0;
      for (VertexId w : bg.neighbors(v)) {
        if (result.winner[w]) {
          has_winner_neighbor = true;
          break;
        }
      }
      FHP_ASSERT(has_winner_neighbor,
                 "loser without winner neighbor: completion not maximal");
    }
  }
  FHP_ASSERT(winners == result.winner_count, "stale winner count");
  FHP_ASSERT(losers == result.loser_count, "stale loser count");
}

}  // namespace fhp
